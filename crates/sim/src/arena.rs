//! Hash-consed payload interning: [`PayloadArena`] and the arena-backed
//! [`CompressedExecution`] for cheap *resident* executions.
//!
//! All-to-all protocols repeat the same few payloads across thousands of
//! fragment slots (`n²` per round), so holding many [`Execution`]s resident
//! for cross-execution analysis — the falsifier's `E_B(k)` scan, the future
//! exhaustive model checker — used to cost one owned payload clone per slot.
//! Interning stores each **distinct** payload once and replaces every slot
//! with a dense [`PayloadId`] (`u32`) handle; compress → hydrate round-trips
//! are lossless and bit-identical, which is what lets the falsifier keep its
//! precomputed scan executions compressed without changing a single verdict.

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};

use crate::execution::{Execution, FaultMode, ProcessRecord, RoundFragment};
use crate::ids::{ProcessId, Round};
use crate::value::{Payload, Value};

/// A deterministic 64-bit FNV-1a [`Hasher`] with a fixed endianness.
///
/// `DefaultHasher` is seeded per-process and its integer methods hash
/// native-endian bytes, so its output is useless as a *stored* fingerprint.
/// `StableHasher` always starts from the FNV offset basis and hashes every
/// integer little-endian, so the same value stream produces the same 64-bit
/// digest in every run — which is what lets the exhaustive model checker
/// deduplicate states by fingerprint and compare the resulting certificates
/// across thread counts and shard splits.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        // Fixed-width so 32- and 64-bit targets agree.
        self.write(&(i as u64).to_le_bytes());
    }
}

/// Hashes `value` through a fresh [`StableHasher`].
pub fn stable_hash<T: Hash>(value: &T) -> u64 {
    let mut hasher = StableHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// Dense handle into a [`PayloadArena`]. `u32` keeps compressed fragments at
/// four bytes per slot regardless of the payload type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PayloadId(pub u32);

/// A hash-consed store of distinct payloads.
///
/// [`intern`](PayloadArena::intern) returns the existing handle for an
/// already-seen payload (no clone, no growth); a fresh payload is stored
/// once. Handles are assigned densely in first-appearance order, so the same
/// event stream always produces the same handles — arena contents are as
/// deterministic as the executions they come from.
#[derive(Clone, Debug, Default)]
pub struct PayloadArena<M> {
    items: Vec<M>,
    index: HashMap<M, PayloadId>,
    hashes: Vec<u64>,
}

impl<M: Payload> PayloadArena<M> {
    /// An empty arena.
    pub fn new() -> Self {
        PayloadArena {
            items: Vec::new(),
            index: HashMap::new(),
            hashes: Vec::new(),
        }
    }

    /// Interns `payload`, returning its handle. Clones the payload only on
    /// first appearance.
    pub fn intern(&mut self, payload: &M) -> PayloadId {
        if let Some(id) = self.index.get(payload) {
            return *id;
        }
        self.intern_owned(payload.clone())
    }

    /// Interns an owned `payload` (no clone even on first appearance).
    pub fn intern_owned(&mut self, payload: M) -> PayloadId {
        if let Some(id) = self.index.get(&payload) {
            return *id;
        }
        let id = PayloadId(u32::try_from(self.items.len()).expect("more than u32::MAX payloads"));
        self.hashes.push(stable_hash(&payload));
        self.items.push(payload.clone());
        self.index.insert(payload, id);
        id
    }

    /// A handle-independent digest of the payload behind `id`: the
    /// [`stable_hash`] of its *content*. Two arenas that interned the same
    /// payloads in different orders assign different [`PayloadId`]s but
    /// identical content hashes, which is what makes
    /// [`CompressedExecution::fingerprint`] comparable across arenas.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this arena.
    pub fn content_hash(&self, id: PayloadId) -> u64 {
        self.hashes[id.0 as usize]
    }

    /// The payload behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this arena.
    pub fn resolve(&self, id: PayloadId) -> &M {
        &self.items[id.0 as usize]
    }

    /// Number of distinct payloads stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A [`RoundFragment`] with payloads replaced by arena handles.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CompressedFragment {
    /// Messages sent, keyed by receiver.
    pub sent: BTreeMap<ProcessId, PayloadId>,
    /// Messages send-omitted, keyed by receiver.
    pub send_omitted: BTreeMap<ProcessId, PayloadId>,
    /// Messages received, keyed by sender.
    pub received: BTreeMap<ProcessId, PayloadId>,
    /// Messages receive-omitted, keyed by sender.
    pub receive_omitted: BTreeMap<ProcessId, PayloadId>,
}

/// A [`ProcessRecord`] with payloads replaced by arena handles.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompressedRecord<I, O> {
    /// The proposal.
    pub proposal: I,
    /// The decision and its round, if decided.
    pub decision: Option<(O, Round)>,
    /// Per-round compressed fragments.
    pub fragments: Vec<CompressedFragment>,
}

/// An [`Execution`] whose payloads live in a shared [`PayloadArena`] —
/// typically a few dozen distinct payloads backing tens of thousands of
/// fragment slots. [`hydrate`](CompressedExecution::hydrate) reconstructs
/// the original bit-for-bit.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompressedExecution<I, O> {
    /// Number of processes `n`.
    pub n: usize,
    /// Resilience bound `t`.
    pub t: usize,
    /// The adversary model of the source execution.
    pub mode: FaultMode,
    /// The corrupted processes.
    pub faulty: std::collections::BTreeSet<ProcessId>,
    /// One compressed record per process.
    pub records: Vec<CompressedRecord<I, O>>,
    /// Number of executed rounds.
    pub rounds: u64,
    /// Whether the source execution was quiescent.
    pub quiescent: bool,
}

impl<I: Value, O: Value> CompressedExecution<I, O> {
    /// Compresses `exec`, interning every payload into `arena`. Multiple
    /// executions may share one arena — that is the point.
    pub fn compress<M: Payload>(exec: &Execution<I, O, M>, arena: &mut PayloadArena<M>) -> Self {
        let mut intern_map = |map: &BTreeMap<ProcessId, M>| -> BTreeMap<ProcessId, PayloadId> {
            map.iter().map(|(p, m)| (*p, arena.intern(m))).collect()
        };
        let records = exec
            .records
            .iter()
            .map(|rec| CompressedRecord {
                proposal: rec.proposal.clone(),
                decision: rec.decision.clone(),
                fragments: rec
                    .fragments
                    .iter()
                    .map(|f| CompressedFragment {
                        sent: intern_map(&f.sent),
                        send_omitted: intern_map(&f.send_omitted),
                        received: intern_map(&f.received),
                        receive_omitted: intern_map(&f.receive_omitted),
                    })
                    .collect(),
            })
            .collect();
        CompressedExecution {
            n: exec.n,
            t: exec.t,
            mode: exec.mode,
            faulty: exec.faulty.clone(),
            records,
            rounds: exec.rounds,
            quiescent: exec.quiescent,
        }
    }

    /// Reconstructs the original execution from `arena`.
    ///
    /// # Panics
    ///
    /// Panics if a handle was not produced by `arena`.
    pub fn hydrate<M: Payload>(&self, arena: &PayloadArena<M>) -> Execution<I, O, M> {
        let resolve_map = |map: &BTreeMap<ProcessId, PayloadId>| -> BTreeMap<ProcessId, M> {
            map.iter()
                .map(|(p, id)| (*p, arena.resolve(*id).clone()))
                .collect()
        };
        Execution {
            n: self.n,
            t: self.t,
            mode: self.mode,
            faulty: self.faulty.clone(),
            records: self
                .records
                .iter()
                .map(|rec| ProcessRecord {
                    proposal: rec.proposal.clone(),
                    decision: rec.decision.clone(),
                    fragments: rec
                        .fragments
                        .iter()
                        .map(|f| RoundFragment {
                            sent: resolve_map(&f.sent),
                            send_omitted: resolve_map(&f.send_omitted),
                            received: resolve_map(&f.received),
                            receive_omitted: resolve_map(&f.receive_omitted),
                        })
                        .collect(),
                })
                .collect(),
            rounds: self.rounds,
            quiescent: self.quiescent,
        }
    }

    /// A deterministic 64-bit fingerprint of the execution's observable
    /// content, independent of *handle* numbering: payload handles are
    /// replaced by their [`PayloadArena::content_hash`] before hashing, so
    /// two compressions of equal executions through different arenas (or
    /// the same arena populated in a different order) fingerprint
    /// identically. The exhaustive model checker uses this to deduplicate
    /// the executions reached along different adversary branches.
    ///
    /// # Panics
    ///
    /// Panics if a handle was not produced by `arena`.
    pub fn fingerprint<M: Payload>(&self, arena: &PayloadArena<M>) -> u64 {
        let mut hasher = StableHasher::new();
        let hash_map =
            |hasher: &mut StableHasher, tag: u8, map: &BTreeMap<ProcessId, PayloadId>| {
                hasher.write_u8(tag);
                hasher.write_usize(map.len());
                for (process, id) in map {
                    hasher.write_usize(process.0);
                    hasher.write_u64(arena.content_hash(*id));
                }
            };
        hasher.write_usize(self.n);
        hasher.write_usize(self.t);
        hasher.write_u8(match self.mode {
            FaultMode::Omission => 0,
            FaultMode::Byzantine => 1,
            FaultMode::Mixed => 2,
        });
        hasher.write_usize(self.faulty.len());
        for process in &self.faulty {
            hasher.write_usize(process.0);
        }
        hasher.write_u64(self.rounds);
        hasher.write_u8(u8::from(self.quiescent));
        for record in &self.records {
            record.proposal.hash(&mut hasher);
            record.decision.hash(&mut hasher);
            hasher.write_usize(record.fragments.len());
            for fragment in &record.fragments {
                hash_map(&mut hasher, 0, &fragment.sent);
                hash_map(&mut hasher, 1, &fragment.send_omitted);
                hash_map(&mut hasher, 2, &fragment.received);
                hash_map(&mut hasher, 3, &fragment.receive_omitted);
            }
        }
        hasher.finish()
    }

    /// Total number of fragment slots (payload references) in this
    /// execution — the count that would have been owned clones without the
    /// arena.
    pub fn slot_count(&self) -> usize {
        self.records
            .iter()
            .flat_map(|r| r.fragments.iter())
            .map(|f| {
                f.sent.len() + f.send_omitted.len() + f.received.len() + f.receive_omitted.len()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::{Inbox, Outbox};
    use crate::protocol::{ProcessCtx, Protocol};
    use crate::scenario::{Adversary, Scenario};
    use crate::value::Bit;

    #[derive(Clone)]
    struct Gossip {
        proposal: Bit,
        decision: Option<Bit>,
    }

    impl Protocol for Gossip {
        type Input = Bit;
        type Output = Bit;
        type Msg = Bit;

        fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
            self.proposal = proposal;
            let mut out = Outbox::new();
            out.broadcast(ctx.others(), proposal);
            out
        }

        fn round(&mut self, ctx: &ProcessCtx, round: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
            let mut out = Outbox::new();
            if round.0 < 2 {
                out.broadcast(ctx.others(), self.proposal);
            } else {
                self.decision = Some(self.proposal);
            }
            out
        }

        fn decision(&self) -> Option<Bit> {
            self.decision
        }
    }

    fn sample(n: usize) -> Execution<Bit, Bit, Bit> {
        Scenario::new(n, 1)
            .protocol(|_| Gossip {
                proposal: Bit::Zero,
                decision: None,
            })
            .inputs((0..n).map(|i| Bit::from(i % 2 == 0)))
            .adversary(Adversary::isolation([ProcessId(n - 1)], Round(2)))
            .run()
            .unwrap()
    }

    #[test]
    fn intern_dedupes_and_resolves() {
        let mut arena: PayloadArena<String> = PayloadArena::new();
        let a = arena.intern(&"x".to_string());
        let b = arena.intern(&"y".to_string());
        let a2 = arena.intern(&"x".to_string());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.resolve(a), "x");
        assert_eq!(arena.resolve(b), "y");
        assert_eq!(arena.intern_owned("y".to_string()), b);
        assert!(!arena.is_empty());
    }

    #[test]
    fn compress_hydrate_round_trips_bit_for_bit() {
        let exec = sample(5);
        let mut arena = PayloadArena::new();
        let compressed = CompressedExecution::compress(&exec, &mut arena);
        // A two-valued protocol interns at most two distinct payloads while
        // the execution holds hundreds of slots.
        assert!(arena.len() <= 2, "arena grew to {}", arena.len());
        assert!(compressed.slot_count() > arena.len());
        let hydrated = compressed.hydrate(&arena);
        assert_eq!(exec, hydrated);
        hydrated.validate().unwrap();
    }

    #[test]
    fn stable_hasher_is_reproducible_and_endian_fixed() {
        // FNV-1a of the byte 0x61 ("a") — a known vector.
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        // Integer writes are little-endian regardless of platform: a u32
        // write equals the write of its little-endian bytes.
        let mut a = StableHasher::new();
        a.write_u32(0x1234_5678);
        let mut b = StableHasher::new();
        b.write(&[0x78, 0x56, 0x34, 0x12]);
        assert_eq!(a.finish(), b.finish());
        assert_eq!(stable_hash(&Bit::Zero), stable_hash(&Bit::Zero));
        assert_ne!(stable_hash(&Bit::Zero), stable_hash(&Bit::One));
    }

    #[test]
    fn fingerprints_ignore_handle_numbering() {
        let exec = sample(5);
        // Arena A sees the execution's payloads in natural order; arena B
        // is pre-seeded so every handle is shifted.
        let mut plain = PayloadArena::new();
        let mut shifted = PayloadArena::new();
        // Natural compression order interns One first (process 0's proposal),
        // so seeding Zero first guarantees every handle is renumbered.
        shifted.intern(&Bit::Zero);
        shifted.intern(&Bit::One);
        let via_plain = CompressedExecution::compress(&exec, &mut plain);
        let via_shifted = CompressedExecution::compress(&exec, &mut shifted);
        assert_ne!(via_plain.records, via_shifted.records);
        assert_eq!(
            via_plain.fingerprint(&plain),
            via_shifted.fingerprint(&shifted)
        );
    }

    #[test]
    fn fingerprints_separate_distinct_executions() {
        let mut arena = PayloadArena::new();
        let a = CompressedExecution::compress(&sample(4), &mut arena);
        let b = CompressedExecution::compress(&sample(5), &mut arena);
        assert_ne!(a.fingerprint(&arena), b.fingerprint(&arena));
    }

    #[test]
    fn many_executions_share_one_arena() {
        let mut arena = PayloadArena::new();
        let execs: Vec<_> = (4..9).map(sample).collect();
        let compressed: Vec<_> = execs
            .iter()
            .map(|e| CompressedExecution::compress(e, &mut arena))
            .collect();
        assert!(arena.len() <= 2);
        for (exec, comp) in execs.iter().zip(&compressed) {
            assert_eq!(*exec, comp.hydrate(&arena));
        }
    }
}
