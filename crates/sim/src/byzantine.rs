//! Byzantine adversary behaviors.
//!
//! In the Byzantine model (paper §2), a corrupted process "can behave
//! arbitrarily". The executor realizes this by replacing the faulty
//! process's state machine with a [`ByzantineBehavior`], which sees the same
//! interface as an honest process (its proposal, its inbox each round) and
//! may emit any outbox — subject only to the structural rules of the model
//! (at most one message per receiver per round, no self-sends) and to
//! unforgeability of signatures, which `ba-crypto` enforces by construction
//! (a behavior only ever holds its own keychain).

use crate::ids::Round;
use crate::mailbox::{Inbox, Outbox};
use crate::protocol::{ProcessCtx, Protocol};
use crate::rng::SimRng;
use crate::value::{Payload, Value};

/// An arbitrary (adversarial) process behavior.
///
/// The type parameters match the protocol under attack so that crafted
/// messages type-check; unforgeable signature objects inside `M` still
/// cannot be fabricated.
pub trait ByzantineBehavior<I: Value, M: Payload>: Send {
    /// Called before round 1 with the proposal the adversary's process was
    /// handed (which it is free to ignore); returns the round-1 outbox.
    fn propose(&mut self, ctx: &ProcessCtx, proposal: I) -> Outbox<M>;

    /// Called each round with the messages actually addressed to this
    /// process; returns the outbox for the next round.
    fn round(&mut self, ctx: &ProcessCtx, round: Round, inbox: &Inbox<M>) -> Outbox<M>;
}

/// The silent adversary: sends nothing, ever. Equivalent to a process that
/// crashed before the execution started.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SilentByzantine;

impl<I: Value, M: Payload> ByzantineBehavior<I, M> for SilentByzantine {
    fn propose(&mut self, _: &ProcessCtx, _: I) -> Outbox<M> {
        Outbox::new()
    }

    fn round(&mut self, _: &ProcessCtx, _: Round, _: &Inbox<M>) -> Outbox<M> {
        Outbox::new()
    }
}

/// Runs the honest protocol faithfully until (and excluding) `crash_at`,
/// then goes silent — the classic crash-failure adversary expressed as a
/// Byzantine behavior.
#[derive(Clone, Debug)]
pub struct FollowThenCrash<P> {
    inner: P,
    crash_at: Round,
}

impl<P: Protocol> FollowThenCrash<P> {
    /// Wraps `inner`, crashing at the start of `crash_at`: no message of
    /// round `crash_at` or later is sent.
    pub fn new(inner: P, crash_at: Round) -> Self {
        FollowThenCrash { inner, crash_at }
    }
}

impl<P: Protocol> ByzantineBehavior<P::Input, P::Msg> for FollowThenCrash<P> {
    fn propose(&mut self, ctx: &ProcessCtx, proposal: P::Input) -> Outbox<P::Msg> {
        let out = self.inner.propose(ctx, proposal);
        if Round::FIRST >= self.crash_at {
            Outbox::new()
        } else {
            out
        }
    }

    fn round(&mut self, ctx: &ProcessCtx, round: Round, inbox: &Inbox<P::Msg>) -> Outbox<P::Msg> {
        let out = self.inner.round(ctx, round, inbox);
        if round.next() >= self.crash_at {
            Outbox::new()
        } else {
            out
        }
    }
}

/// The "honest mimic": a Byzantine behavior that simply runs the honest
/// protocol.
///
/// This is the adversary behind the paper's Lemma 7: an execution in which
/// some processes are *declared* faulty but behave exactly like correct
/// ones is indistinguishable from the fully correct execution — so the
/// correct processes decide the same value, which must therefore be
/// admissible under the *smaller* input configuration. `ba-core`'s
/// `lemma7_refute` uses this to refute algorithms whose validity property
/// violates the containment condition.
#[derive(Clone, Debug)]
pub struct HonestMimic<P> {
    inner: P,
}

impl<P: Protocol> HonestMimic<P> {
    /// Wraps the honest protocol instance this "adversary" will run.
    pub fn new(inner: P) -> Self {
        HonestMimic { inner }
    }
}

impl<P: Protocol> ByzantineBehavior<P::Input, P::Msg> for HonestMimic<P> {
    fn propose(&mut self, ctx: &ProcessCtx, proposal: P::Input) -> Outbox<P::Msg> {
        self.inner.propose(ctx, proposal)
    }

    fn round(&mut self, ctx: &ProcessCtx, round: Round, inbox: &Inbox<P::Msg>) -> Outbox<P::Msg> {
        self.inner.round(ctx, round, inbox)
    }
}

/// A replay adversary: each round it re-sends, to randomly chosen peers,
/// random messages it has *observed* (received) so far.
///
/// This is the strongest generic attack available against authenticated
/// protocols — it cannot forge signatures, only replay them out of context —
/// and a useful smoke test for any protocol's tolerance of stale or
/// misdirected traffic. Deterministic for a fixed seed.
#[derive(Clone, Debug)]
pub struct ReplayByzantine<M> {
    observed: Vec<M>,
    rng: SimRng,
    sends_per_round: usize,
}

impl<M: Payload> ReplayByzantine<M> {
    /// Creates a replay adversary sending up to `sends_per_round` replayed
    /// messages each round, seeded with `seed`.
    pub fn new(seed: u64, sends_per_round: usize) -> Self {
        ReplayByzantine {
            observed: Vec::new(),
            rng: SimRng::seed_from_u64(seed),
            sends_per_round,
        }
    }

    fn emit(&mut self, ctx: &ProcessCtx) -> Outbox<M> {
        let mut out = Outbox::new();
        if self.observed.is_empty() {
            return out;
        }
        let peers: Vec<_> = ctx.others().collect();
        for _ in 0..self.sends_per_round {
            let msg = self.observed[self.rng.gen_index(0, self.observed.len())].clone();
            let peer = peers[self.rng.gen_index(0, peers.len())];
            // Respect the one-message-per-receiver rule: skip peers already
            // addressed this round.
            if out.iter().all(|(p, _)| p != peer) {
                out.send(peer, msg);
            }
        }
        out
    }
}

impl<I: Value, M: Payload> ByzantineBehavior<I, M> for ReplayByzantine<M> {
    fn propose(&mut self, ctx: &ProcessCtx, _: I) -> Outbox<M> {
        self.emit(ctx)
    }

    fn round(&mut self, ctx: &ProcessCtx, _: Round, inbox: &Inbox<M>) -> Outbox<M> {
        self.observed.extend(inbox.iter().map(|(_, m)| m.clone()));
        self.emit(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;

    #[test]
    fn silent_sends_nothing() {
        let ctx = ProcessCtx::new(ProcessId(0), 3, 1);
        let mut b = SilentByzantine;
        let out: Outbox<u8> = ByzantineBehavior::<u8, u8>::propose(&mut b, &ctx, 0);
        assert!(out.is_empty());
        let out: Outbox<u8> =
            ByzantineBehavior::<u8, u8>::round(&mut b, &ctx, Round(1), &Inbox::new());
        assert!(out.is_empty());
    }

    #[test]
    fn replay_only_resends_observed_messages() {
        let ctx = ProcessCtx::new(ProcessId(0), 4, 1);
        let mut b = ReplayByzantine::<u8>::new(11, 3);
        // Nothing observed yet: nothing to send.
        let out = ByzantineBehavior::<u8, u8>::propose(&mut b, &ctx, 0);
        assert!(out.is_empty());
        let inbox = Inbox::from_map([(ProcessId(1), 42u8)].into_iter().collect());
        let out = ByzantineBehavior::<u8, u8>::round(&mut b, &ctx, Round(1), &inbox);
        for (_, m) in out.iter() {
            assert_eq!(*m, 42);
        }
    }

    #[test]
    fn replay_is_deterministic_per_seed() {
        let run = |seed| {
            let ctx = ProcessCtx::new(ProcessId(0), 4, 1);
            let mut b = ReplayByzantine::<u8>::new(seed, 2);
            let inbox = Inbox::from_map(
                [(ProcessId(1), 7u8), (ProcessId(2), 9u8)]
                    .into_iter()
                    .collect(),
            );
            let mut sent = Vec::new();
            for k in 1..6 {
                let out = ByzantineBehavior::<u8, u8>::round(&mut b, &ctx, Round(k), &inbox);
                sent.extend(out.iter().map(|(p, m)| (p, *m)).collect::<Vec<_>>());
            }
            sent
        };
        assert_eq!(run(5), run(5));
    }
}
