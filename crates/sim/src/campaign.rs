//! The [`Campaign`] runner: parallel sweeps of [`Scenario`] grids.
//!
//! The large `(n, t)` sweeps needed to probe sub-quadratic regimes — and any
//! experiment that varies the adversary or the input profile — are grids of
//! independent scenarios. `Campaign` enumerates the grid, executes every
//! point on a scoped-thread worker pool, and aggregates trace-complete
//! per-point reports: message complexity, decision rounds, and property
//! violations.
//!
//! Two run modes:
//!
//! * [`Campaign::run_scenarios`] — each grid point builds one [`Scenario`];
//!   the runner executes it and derives a [`ScenarioStats`] report;
//! * [`Campaign::map`] — each grid point runs an arbitrary job (e.g. a full
//!   falsifier invocation) and returns its result.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ba_obs::Recorder;

use crate::error::SimError;
use crate::execution::Execution;
use crate::ids::{ProcessId, Round};
use crate::par::par_map;
use crate::protocol::Protocol;
use crate::scenario::ProtocolScenario;
use crate::sink::TraceMode;
use crate::value::{Payload, Value};

/// One point of a campaign grid: system size plus free-form labels naming
/// the adversary and input profile the builder closure should realize.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct CampaignPoint {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound.
    pub t: usize,
    /// Which adversary to install (interpreted by the builder closure).
    pub adversary: String,
    /// Which input profile to use (interpreted by the builder closure).
    pub inputs: String,
}

impl CampaignPoint {
    /// A point with the default adversary (`"none"`) and inputs
    /// (`"default"`).
    pub fn new(n: usize, t: usize) -> Self {
        CampaignPoint {
            n,
            t,
            adversary: "none".into(),
            inputs: "default".into(),
        }
    }

    /// Names the adversary for this point.
    pub fn with_adversary(mut self, adversary: impl Into<String>) -> Self {
        self.adversary = adversary.into();
        self
    }

    /// Names the input profile for this point.
    pub fn with_inputs(mut self, inputs: impl Into<String>) -> Self {
        self.inputs = inputs.into();
        self
    }
}

impl fmt::Display for CampaignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} t={} adv={} in={}",
            self.n, self.t, self.adversary, self.inputs
        )
    }
}

/// A grid of scenarios to sweep in parallel.
#[derive(Clone, Default)]
pub struct Campaign {
    points: Vec<CampaignPoint>,
    threads: usize,
    trace_mode: Option<TraceMode>,
    recorder: Option<Arc<dyn Recorder>>,
}

impl fmt::Debug for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("points", &self.points)
            .field("threads", &self.threads)
            .field("trace_mode", &self.trace_mode)
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Self {
        Campaign::default()
    }

    /// A campaign over explicit points.
    pub fn over(points: impl IntoIterator<Item = CampaignPoint>) -> Self {
        Campaign {
            points: points.into_iter().collect(),
            ..Campaign::default()
        }
    }

    /// The full cross product of `(n, t)` pairs × adversary labels × input
    /// labels.
    pub fn grid(
        nts: impl IntoIterator<Item = (usize, usize)>,
        adversaries: &[&str],
        inputs: &[&str],
    ) -> Self {
        let mut points = Vec::new();
        for (n, t) in nts {
            for adv in adversaries {
                for inp in inputs {
                    points.push(
                        CampaignPoint::new(n, t)
                            .with_adversary(*adv)
                            .with_inputs(*inp),
                    );
                }
            }
        }
        Campaign {
            points,
            ..Campaign::default()
        }
    }

    /// Appends one point.
    pub fn point(mut self, point: CampaignPoint) -> Self {
        self.points.push(point);
        self
    }

    /// Caps the worker pool. An explicit `0` clamps to 1 (a serial sweep)
    /// rather than configuring a zero-width pool; leaving the cap unset
    /// keeps the default of machine parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Forces a [`TraceMode`] on every scenario of the sweep, overriding
    /// whatever the builder closure configured. Unset (the default), each
    /// scenario's own mode applies — which is [`TraceMode::Stats`] unless a
    /// point opted into [`TraceMode::Full`].
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = Some(mode);
        self
    }

    /// Installs a telemetry [`Recorder`] on the sweep. Per-point logical
    /// counters (points, messages, rounds, violations, errors) go to the
    /// deterministic channel; per-point wall time, total sweep wall time,
    /// and worker-pool utilization go to the wall-clock channel. The
    /// recorder is also threaded into every scenario
    /// ([`ProtocolScenario::recorder`](crate::ProtocolScenario::recorder)),
    /// so executor-level telemetry is captured too. Observation-only:
    /// reports are bit-identical with recording on or off.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The grid points, in sweep order.
    pub fn points(&self) -> &[CampaignPoint] {
        &self.points
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` iff the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Runs an arbitrary job per grid point, in parallel; results return in
    /// grid order. Use this to sweep whole-algorithm workloads (e.g. the
    /// `ba-core` falsifier) over `(n, t)` grids.
    ///
    /// Consumes the campaign: each worker takes ownership of its point, so
    /// no point is ever cloned for the result pairing.
    pub fn map<R, F>(self, job: F) -> Vec<(CampaignPoint, R)>
    where
        R: Send,
        F: Fn(&CampaignPoint) -> R + Sync,
    {
        let recorder = self.recorder;
        let meter = recorder
            .as_ref()
            .map(|_| SweepMeter::start(&self.points, self.threads));
        let results = par_map(self.points, self.threads, |i, point| {
            let started = recorder.as_ref().map(|_| Instant::now());
            let result = job(&point);
            if let (Some(r), Some(started)) = (&recorder, started) {
                let nanos = elapsed_nanos(started);
                r.timing("campaign.point.wall", nanos, &[]);
                r.counter("campaign.points", 1, &[]);
                r.event(
                    "campaign.point.done",
                    &[
                        ("index", i.into()),
                        ("messages", 0u64.into()),
                        ("rounds", 0u64.into()),
                        ("ok", true.into()),
                    ],
                );
                if let Some(m) = &meter {
                    m.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
                }
            }
            (point, result)
        });
        if let (Some(r), Some(meter)) = (&recorder, meter) {
            meter.finish(r.as_ref());
        }
        results
    }

    /// Builds one scenario per grid point (via `build`), executes them all
    /// in parallel, and aggregates per-point [`ScenarioStats`] reports.
    ///
    /// Each point runs through [`ProtocolScenario::run_report`], so sweeps
    /// take the allocation-free [`TraceMode::Stats`] engine path unless the
    /// builder (or [`Campaign::trace_mode`]) opts into [`TraceMode::Full`].
    /// Consumes the campaign: workers own their points outright.
    pub fn run_scenarios<P, F, B>(self, build: B) -> CampaignReport<P::Output>
    where
        P: Protocol,
        F: Fn(ProcessId) -> P,
        B: Fn(&CampaignPoint) -> ProtocolScenario<'static, P, F> + Sync,
    {
        let forced_mode = self.trace_mode;
        let recorder = self.recorder;
        let meter = recorder
            .as_ref()
            .map(|_| SweepMeter::start(&self.points, self.threads));
        let outcomes = par_map(self.points, self.threads, |i, point| {
            let mut scenario = build(&point);
            if let Some(mode) = forced_mode {
                scenario = scenario.trace_mode(mode);
            }
            if let Some(r) = &recorder {
                scenario = scenario.recorder(r.clone());
            }
            let started = recorder.as_ref().map(|_| Instant::now());
            let result = scenario.run_report();
            if let Some(r) = &recorder {
                record_point(r.as_ref(), i, &result);
                if let (Some(m), Some(started)) = (&meter, started) {
                    let nanos = elapsed_nanos(started);
                    r.timing("campaign.point.wall", nanos, &[]);
                    m.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
                }
            }
            ScenarioOutcome { point, result }
        });
        if let (Some(r), Some(meter)) = (&recorder, meter) {
            meter.finish(r.as_ref());
        }
        CampaignReport { outcomes }
    }
}

/// Nanoseconds since `started`, saturating on the (theoretical) overflow.
fn elapsed_nanos(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Records one completed grid point's deterministic counters, plus a
/// `campaign.point.done` event carrying the point's grid index — the hook
/// progress streamers (the `campaign_worker --progress` recorder) key on.
fn record_point<O>(
    recorder: &dyn Recorder,
    index: usize,
    result: &Result<ScenarioStats<O>, SimError>,
) {
    recorder.counter("campaign.points", 1, &[]);
    let (messages, rounds, ok) = match result {
        Ok(stats) => {
            recorder.counter("campaign.messages", stats.total_messages, &[]);
            recorder.histogram("campaign.point.messages", stats.total_messages, &[]);
            recorder.histogram("campaign.point.rounds", stats.rounds, &[]);
            if !stats.violations.is_empty() {
                recorder.counter("campaign.violations", stats.violations.len() as u64, &[]);
            }
            (stats.total_messages, stats.rounds, true)
        }
        Err(_) => {
            recorder.counter("campaign.errors", 1, &[]);
            (0, 0, false)
        }
    };
    recorder.event(
        "campaign.point.done",
        &[
            ("index", index.into()),
            ("messages", messages.into()),
            ("rounds", rounds.into()),
            ("ok", ok.into()),
        ],
    );
}

/// Wall-clock sweep accounting: total sweep time plus worker-pool
/// utilization (busy point-time over pool capacity). Wall channel only.
struct SweepMeter {
    started: Instant,
    busy_nanos: AtomicU64,
    workers: usize,
}

impl SweepMeter {
    fn start(points: &[CampaignPoint], threads: usize) -> Self {
        SweepMeter {
            started: Instant::now(),
            busy_nanos: AtomicU64::new(0),
            workers: crate::par::resolve_threads(threads, points.len()),
        }
    }

    fn finish(self, recorder: &dyn Recorder) {
        let elapsed = elapsed_nanos(self.started);
        recorder.timing("campaign.sweep.wall", elapsed, &[]);
        let capacity = elapsed.saturating_mul(self.workers as u64);
        if capacity > 0 {
            let busy = self.busy_nanos.load(Ordering::Relaxed);
            recorder.gauge("campaign.utilization", busy as f64 / capacity as f64, &[]);
        }
    }
}

/// The trace-derived report of one scenario execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScenarioStats<O> {
    /// Messages sent by correct processes (paper §2's message complexity).
    pub message_complexity: u64,
    /// Messages sent by all processes.
    pub total_messages: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Whether the execution quiesced within the horizon.
    pub quiescent: bool,
    /// The round at the start of which every correct process had decided.
    pub decided_by: Option<Round>,
    /// Decision of each correct process (`None` = undecided).
    pub decisions: BTreeMap<ProcessId, Option<O>>,
    /// Property violations observed in the trace (invalid execution,
    /// disagreement, undecided correct processes).
    pub violations: Vec<String>,
}

impl<O: Value> ScenarioStats<O> {
    /// Derives the report from a completed execution, including a full
    /// validation pass over the trace.
    pub fn from_execution<I: Value, M: Payload>(exec: &Execution<I, O, M>) -> Self {
        let decisions: BTreeMap<ProcessId, Option<O>> = exec
            .correct()
            .map(|p| (p, exec.decision_of(p).cloned()))
            .collect();
        let mut violations = Vec::new();
        if let Err(e) = exec.validate() {
            violations.push(format!("invalid execution: {e}"));
        }
        violations.extend(Self::derive_violations(&decisions));
        ScenarioStats {
            message_complexity: exec.message_complexity(),
            total_messages: exec.total_messages(),
            rounds: exec.rounds,
            quiescent: exec.quiescent,
            decided_by: exec.all_decided_by(),
            decisions,
            violations,
        }
    }

    /// The decision-level property checks (agreement, termination) shared
    /// by [`ScenarioStats::from_execution`] and the trace-free
    /// [`StatsSink`](crate::StatsSink) path, byte-identical in both.
    pub(crate) fn derive_violations(decisions: &BTreeMap<ProcessId, Option<O>>) -> Vec<String> {
        let mut violations = Vec::new();
        let distinct: std::collections::BTreeSet<&O> = decisions.values().flatten().collect();
        if distinct.len() > 1 {
            violations.push(format!(
                "agreement violated: correct decisions {distinct:?}"
            ));
        }
        for (p, d) in decisions {
            if d.is_none() {
                violations.push(format!(
                    "termination violated: {p} undecided within horizon"
                ));
            }
        }
        violations
    }
}

/// The outcome of one grid point: stats, or the simulator error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScenarioOutcome<O> {
    /// The grid point.
    pub point: CampaignPoint,
    /// Stats on success; the typed error if the scenario was invalid or the
    /// protocol violated the model.
    pub result: Result<ScenarioStats<O>, SimError>,
}

/// Aggregated results of a scenario sweep, in grid order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CampaignReport<O> {
    /// One outcome per grid point.
    pub outcomes: Vec<ScenarioOutcome<O>>,
}

impl<O: Value> CampaignReport<O> {
    /// Total message complexity across all successful points.
    pub fn total_message_complexity(&self) -> u64 {
        self.stats().map(|(_, s)| s.message_complexity).sum()
    }

    /// The largest message complexity observed at any point.
    pub fn max_message_complexity(&self) -> u64 {
        self.stats()
            .map(|(_, s)| s.message_complexity)
            .max()
            .unwrap_or(0)
    }

    /// Iterates over `(point, stats)` for every successful point.
    pub fn stats(&self) -> impl Iterator<Item = (&CampaignPoint, &ScenarioStats<O>)> {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok().map(|s| (&o.point, s)))
    }

    /// Iterates over `(point, violation)` pairs across the sweep.
    pub fn violations(&self) -> impl Iterator<Item = (&CampaignPoint, &str)> {
        self.stats()
            .flat_map(|(p, s)| s.violations.iter().map(move |v| (p, v.as_str())))
    }

    /// Iterates over `(point, error)` for points that failed to execute.
    pub fn errors(&self) -> impl Iterator<Item = (&CampaignPoint, &SimError)> {
        self.outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().err().map(|e| (&o.point, e)))
    }

    /// `true` iff every point executed and no point recorded a violation.
    pub fn all_clean(&self) -> bool {
        self.errors().next().is_none() && self.violations().next().is_none()
    }

    /// A human-readable per-point summary table.
    pub fn summary(&self) -> String {
        let mut out = String::from("point | msgs(correct) | rounds | decided_by | violations\n");
        for o in &self.outcomes {
            match &o.result {
                Ok(s) => out.push_str(&format!(
                    "{} | {} | {} | {} | {}\n",
                    o.point,
                    s.message_complexity,
                    s.rounds,
                    s.decided_by.map_or("—".into(), |r| r.0.to_string()),
                    if s.violations.is_empty() {
                        "none".into()
                    } else {
                        s.violations.join("; ")
                    },
                )),
                Err(e) => out.push_str(&format!("{} | error: {e}\n", o.point)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Round;
    use crate::mailbox::{Inbox, Outbox};
    use crate::protocol::ProcessCtx;
    use crate::scenario::{Adversary, Scenario};
    use crate::value::Bit;

    /// Echo-once protocol: broadcast in round 1, decide own proposal.
    #[derive(Clone)]
    struct EchoOnce {
        proposal: Bit,
        decision: Option<Bit>,
    }

    impl Protocol for EchoOnce {
        type Input = Bit;
        type Output = Bit;
        type Msg = Bit;

        fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
            self.proposal = proposal;
            let mut out = Outbox::new();
            out.send_to_all(ctx.others(), proposal);
            out
        }

        fn round(&mut self, _: &ProcessCtx, round: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
            if round == Round::FIRST {
                self.decision = Some(self.proposal);
            }
            Outbox::new()
        }

        fn decision(&self) -> Option<Bit> {
            self.decision
        }
    }

    fn echo_factory(_: ProcessId) -> EchoOnce {
        EchoOnce {
            proposal: Bit::Zero,
            decision: None,
        }
    }

    #[test]
    fn grid_enumerates_the_cross_product() {
        let campaign = Campaign::grid([(4, 1), (5, 2)], &["none", "isolation"], &["zeros"]);
        assert_eq!(campaign.len(), 4);
        assert_eq!(campaign.points()[0].adversary, "none");
        assert_eq!(campaign.points()[1].adversary, "isolation");
    }

    #[test]
    fn scenario_sweep_aggregates_stats_per_point() {
        let campaign = Campaign::grid([(4, 1), (5, 1), (6, 2), (7, 2)], &["none"], &["ones"]);
        let report = campaign.run_scenarios(|point| {
            Scenario::new(point.n, point.t)
                .protocol(echo_factory as fn(ProcessId) -> EchoOnce)
                .uniform_input(Bit::One)
        });
        assert_eq!(report.outcomes.len(), 4);
        assert!(report.all_clean(), "{}", report.summary());
        // Each point sends n(n-1) messages.
        let expected: u64 = [4u64, 5, 6, 7].iter().map(|n| n * (n - 1)).sum();
        assert_eq!(report.total_message_complexity(), expected);
        assert_eq!(report.max_message_complexity(), 42);
        // Every point decided by round 2.
        for (_, stats) in report.stats() {
            assert_eq!(stats.decided_by, Some(Round(2)));
            assert!(stats.quiescent);
        }
    }

    #[test]
    fn parallel_and_serial_sweeps_agree() {
        let points: Vec<(usize, usize)> = (4..12).map(|n| (n, 2)).collect();
        let build = |point: &CampaignPoint| {
            Scenario::new(point.n, point.t)
                .protocol(echo_factory as fn(ProcessId) -> EchoOnce)
                .uniform_input(Bit::Zero)
        };
        let serial = Campaign::grid(points.clone(), &["none"], &["zeros"])
            .threads(1)
            .run_scenarios(build);
        let parallel = Campaign::grid(points, &["none"], &["zeros"])
            .threads(4)
            .run_scenarios(build);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sweep_surfaces_violations_and_errors() {
        // The builder closure realizes the grid's adversary label: the last
        // process is isolated from round 1. This protocol decides its own
        // proposal regardless of its inbox, so mixed inputs disagree, which
        // the report must surface.
        let campaign = Campaign::grid([(4, 1), (3, 3)], &["isolation"], &["mixed"]);
        let report = campaign.run_scenarios(|point| {
            let n = point.n;
            let scenario = Scenario::new(point.n, point.t)
                .protocol(echo_factory as fn(ProcessId) -> EchoOnce)
                .inputs((0..n).map(|i| if i == 0 { Bit::One } else { Bit::Zero }));
            match point.adversary.as_str() {
                "isolation" => {
                    scenario.adversary(Adversary::isolation([ProcessId(n - 1)], Round::FIRST))
                }
                _ => scenario,
            }
        });
        // (3, 3) is an invalid resilience bound → typed error, not a panic.
        assert_eq!(report.errors().count(), 1);
        let (point, err) = report.errors().next().unwrap();
        assert_eq!((point.n, point.t), (3, 3));
        assert_eq!(*err, SimError::InvalidResilience { n: 3, t: 3 });
        // The (4, 1) point disagrees (p0 decides One, others Zero).
        assert!(report
            .violations()
            .any(|(_, v)| v.contains("agreement violated")));
        assert!(!report.all_clean());
        assert!(report.summary().contains("error"));
    }

    #[test]
    fn threads_zero_clamps_to_a_serial_sweep() {
        // An explicit zero thread cap must not configure a zero-width pool:
        // it clamps to one worker, and the sweep still runs (identically to
        // an explicit serial sweep).
        let campaign = Campaign::grid([(4, 1), (5, 1)], &["none"], &["ones"]).threads(0);
        assert_eq!(campaign.threads, 1);
        let build = |point: &CampaignPoint| {
            Scenario::new(point.n, point.t)
                .protocol(echo_factory as fn(ProcessId) -> EchoOnce)
                .uniform_input(Bit::One)
        };
        let clamped = campaign.run_scenarios(build);
        let serial = Campaign::grid([(4, 1), (5, 1)], &["none"], &["ones"])
            .threads(1)
            .run_scenarios(build);
        assert_eq!(clamped, serial);
        assert!(clamped.all_clean());
        // The unset default still means machine parallelism.
        assert_eq!(Campaign::new().threads, 0);
    }

    #[test]
    fn map_runs_arbitrary_jobs_per_point() {
        let campaign = Campaign::grid([(4, 2), (8, 2), (12, 4), (16, 8)], &["none"], &["-"]);
        let results = campaign.map(|point| point.n * point.t);
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].1, 8);
        assert_eq!(results[3].1, 128);
        // Grid order is preserved.
        assert!(results
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 || w[0].0.n <= w[1].0.n));
    }
}
