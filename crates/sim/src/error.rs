//! Simulator error types.

use std::error::Error;
use std::fmt;

use crate::ids::{ProcessId, Round};

/// An error raised while driving an execution.
///
/// Most variants indicate a *protocol* bug (violating the computational
/// model) or an *adversary* bug (violating omission-validity); the executor
/// surfaces them instead of producing an invalid execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The resilience bound is invalid: the model requires `t < n`.
    InvalidResilience {
        /// Number of processes in the system.
        n: usize,
        /// The offending resilience bound.
        t: usize,
    },
    /// A process addressed a message to itself, which the model forbids.
    SelfSend {
        /// The offending process.
        process: ProcessId,
        /// The round in which the message would have been sent.
        round: Round,
    },
    /// A process addressed a message to a non-existent receiver.
    InvalidReceiver {
        /// The offending sender.
        process: ProcessId,
        /// The invalid receiver identifier.
        receiver: ProcessId,
        /// The number of processes in the system.
        n: usize,
    },
    /// The omission plan blamed a process outside the fault set.
    OmissionByCorrect {
        /// The correct process the plan tried to blame.
        process: ProcessId,
        /// The round of the offending fate decision.
        round: Round,
    },
    /// The fault model forged a message from a sender that is not currently
    /// corrupted.
    ForgeByCorrect {
        /// The correct sender whose message the model tried to forge.
        process: ProcessId,
        /// The round of the offending routing decision.
        round: Round,
    },
    /// A protocol changed its decision after deciding (decisions are
    /// irrevocable).
    DecisionChanged {
        /// The offending process.
        process: ProcessId,
        /// The round at the start of which the change was observed.
        round: Round,
    },
    /// The number of proposals supplied does not match `n`.
    ProposalCount {
        /// Number of proposals supplied.
        got: usize,
        /// Number of processes in the system.
        expected: usize,
    },
    /// More than `t` processes were declared faulty.
    TooManyFaulty {
        /// Number of faulty processes declared.
        got: usize,
        /// The resilience bound `t`.
        t: usize,
    },
    /// A Byzantine behavior was supplied for a process not in the fault set,
    /// or vice versa.
    BehaviorMismatch {
        /// The process whose behavior assignment is inconsistent.
        process: ProcessId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidResilience { n, t } => {
                write!(
                    f,
                    "invalid resilience bound: require t < n (got t = {t}, n = {n})"
                )
            }
            SimError::SelfSend { process, round } => {
                write!(f, "{process} sent a message to itself in {round}")
            }
            SimError::InvalidReceiver {
                process,
                receiver,
                n,
            } => {
                write!(
                    f,
                    "{process} addressed non-existent receiver {receiver} (n = {n})"
                )
            }
            SimError::OmissionByCorrect { process, round } => {
                write!(
                    f,
                    "omission plan blamed correct process {process} in {round}"
                )
            }
            SimError::ForgeByCorrect { process, round } => {
                write!(
                    f,
                    "fault model forged a message from correct process {process} in {round}"
                )
            }
            SimError::DecisionChanged { process, round } => {
                write!(f, "{process} changed its decision at the start of {round}")
            }
            SimError::ProposalCount { got, expected } => {
                write!(f, "got {got} proposals for {expected} processes")
            }
            SimError::TooManyFaulty { got, t } => {
                write!(f, "{got} faulty processes exceed the bound t = {t}")
            }
            SimError::BehaviorMismatch { process } => {
                write!(
                    f,
                    "behavior assignment for {process} is inconsistent with the fault set"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_informatively() {
        let e = SimError::SelfSend {
            process: ProcessId(3),
            round: Round(2),
        };
        assert_eq!(e.to_string(), "p3 sent a message to itself in round 2");
        let e = SimError::TooManyFaulty { got: 5, t: 2 };
        assert!(e.to_string().contains("exceed"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: Error>() {}
        assert_err::<SimError>();
    }
}
