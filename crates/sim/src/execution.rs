//! Recorded executions: fragments, behaviors, the five execution guarantees,
//! indistinguishability, and message-complexity accounting.
//!
//! These types are deliberate *passive data* — all fields are public — so the
//! proof constructions in `ba-core` (`swap_omission`, Algorithm 4;
//! `merge`, Algorithm 5) can perform the trace surgery the paper describes,
//! with [`Execution::validate`] re-checking the model's guarantees
//! afterwards.

use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

use crate::ids::{ProcessId, Round};
use crate::value::{Payload, Value};

/// Whether an execution was produced under the omission, Byzantine, or a
/// mixed adversary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultMode {
    /// Faulty processes follow their state machine but may omit sending or
    /// receiving messages (paper §3).
    Omission,
    /// Faulty processes behave arbitrarily (paper §2).
    Byzantine,
    /// Per-process mixed corruption: some faulty processes are Byzantine,
    /// the rest omission-faulty, in one execution
    /// (see [`Adversary::mixed`](crate::Adversary::mixed)).
    Mixed,
}

/// Everything that happened at one process in one round, from the
/// perspective of an omniscient external observer (paper §A.1.4).
///
/// Maps are keyed by the *other* endpoint: `sent`/`send_omitted` by receiver,
/// `received`/`receive_omitted` by sender. This structurally enforces the
/// fragment conditions (9) and (10) — at most one message per counterpart —
/// while conditions (4), (5), and (8) are checked by
/// [`Execution::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RoundFragment<M> {
    /// Messages successfully sent this round, keyed by receiver. A sent
    /// message is either received or receive-omitted by its receiver.
    pub sent: BTreeMap<ProcessId, M>,
    /// Messages the process's state machine emitted but that were
    /// send-omitted (only faulty processes have entries here).
    pub send_omitted: BTreeMap<ProcessId, M>,
    /// Messages received this round, keyed by sender. This is exactly what
    /// the state machine observes.
    pub received: BTreeMap<ProcessId, M>,
    /// Messages addressed to this process that it receive-omitted (only
    /// faulty processes have entries here).
    pub receive_omitted: BTreeMap<ProcessId, M>,
}

impl<M: Payload> RoundFragment<M> {
    /// An empty fragment (no traffic).
    pub fn empty() -> Self {
        RoundFragment {
            sent: BTreeMap::new(),
            send_omitted: BTreeMap::new(),
            received: BTreeMap::new(),
            receive_omitted: BTreeMap::new(),
        }
    }

    /// `true` iff the fragment records no traffic at all.
    pub fn is_empty(&self) -> bool {
        self.sent.is_empty()
            && self.send_omitted.is_empty()
            && self.received.is_empty()
            && self.receive_omitted.is_empty()
    }

    /// Number of messages successfully sent this round.
    pub fn sent_count(&self) -> usize {
        self.sent.len()
    }
}

impl<M: Payload> Default for RoundFragment<M> {
    fn default() -> Self {
        Self::empty()
    }
}

/// The behavior of one process across an execution (paper §A.1.5): its
/// proposal, decision timeline, and per-round fragments.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcessRecord<I, O, M> {
    /// The value the process proposed (drawn from `V_I`).
    pub proposal: I,
    /// The decision (drawn from `V_O`) and the round at the start of which
    /// it first appeared (`Round(k)` means the decision was visible in the
    /// state at the start of round `k`).
    pub decision: Option<(O, Round)>,
    /// Fragment of each executed round; `fragments[k - 1]` is round `k`.
    pub fragments: Vec<RoundFragment<M>>,
}

impl<I: Value, O: Value, M: Payload> ProcessRecord<I, O, M> {
    /// The fragment of `round`, or `None` if the execution stopped earlier.
    ///
    /// A missing fragment is semantically an empty one: the execution was
    /// quiescent from that round on.
    pub fn fragment(&self, round: Round) -> Option<&RoundFragment<M>> {
        self.fragments.get(round.index())
    }

    /// The decided value, if any.
    pub fn decided_value(&self) -> Option<&O> {
        self.decision.as_ref().map(|(v, _)| v)
    }

    /// All messages this process receive-omitted, as `(round, sender,
    /// payload)` triples — the paper's `all_receive_omitted(B_i)`.
    pub fn all_receive_omitted(&self) -> impl Iterator<Item = (Round, ProcessId, &M)> {
        self.fragments.iter().enumerate().flat_map(|(i, frag)| {
            frag.receive_omitted
                .iter()
                .map(move |(sender, m)| (Round(i as u64 + 1), *sender, m))
        })
    }

    /// All messages this process send-omitted, as `(round, receiver,
    /// payload)` triples — the paper's `all_send_omitted(B_i)`.
    pub fn all_send_omitted(&self) -> impl Iterator<Item = (Round, ProcessId, &M)> {
        self.fragments.iter().enumerate().flat_map(|(i, frag)| {
            frag.send_omitted
                .iter()
                .map(move |(receiver, m)| (Round(i as u64 + 1), *receiver, m))
        })
    }

    /// Total number of messages this process successfully sent.
    pub fn total_sent(&self) -> u64 {
        self.fragments.iter().map(|f| f.sent_count() as u64).sum()
    }
}

/// How a process concluded within an execution's horizon.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecisionOutcome<V> {
    /// Decided `value` at the start of `round`.
    Decided {
        /// The decided value.
        value: V,
        /// The round at the start of which the decision first appeared.
        round: Round,
    },
    /// Never decided within the execution's horizon.
    Undecided,
}

/// A complete recorded execution: fault set plus one behavior per process
/// (paper §A.1.6).
///
/// Executions produced by the executor satisfy the five execution guarantees
/// by construction; executions produced by trace surgery should be re-checked
/// with [`Execution::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Execution<I, O, M> {
    /// Number of processes `n`.
    pub n: usize,
    /// Resilience bound `t`.
    pub t: usize,
    /// The adversary model under which this execution was produced.
    pub mode: FaultMode,
    /// The corrupted processes `F` (at most `t`).
    pub faulty: BTreeSet<ProcessId>,
    /// One record per process, indexed by process id.
    pub records: Vec<ProcessRecord<I, O, M>>,
    /// Number of rounds actually executed.
    pub rounds: u64,
    /// `true` iff the execution reached a round after which no process had
    /// messages in flight and all correct processes had decided — i.e. the
    /// recorded prefix determines the (infinite) execution's suffix.
    pub quiescent: bool,
}

impl<I: Value, O: Value, M: Payload> Execution<I, O, M> {
    /// The record of `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn record(&self, pid: ProcessId) -> &ProcessRecord<I, O, M> {
        &self.records[pid.index()]
    }

    /// `true` iff `pid` is correct in this execution.
    pub fn is_correct(&self, pid: ProcessId) -> bool {
        !self.faulty.contains(&pid)
    }

    /// Iterates over the correct processes, in id order — the paper's
    /// `Correct_A(E)`.
    pub fn correct(&self) -> impl Iterator<Item = ProcessId> + '_ {
        ProcessId::all(self.n).filter(move |p| !self.faulty.contains(p))
    }

    /// The decision outcome of `pid`.
    pub fn outcome(&self, pid: ProcessId) -> DecisionOutcome<O> {
        match &self.record(pid).decision {
            Some((v, r)) => DecisionOutcome::Decided {
                value: v.clone(),
                round: *r,
            },
            None => DecisionOutcome::Undecided,
        }
    }

    /// The value decided by `pid`, if any.
    pub fn decision_of(&self, pid: ProcessId) -> Option<&O> {
        self.record(pid).decided_value()
    }

    /// `true` iff every correct process decided exactly `value`.
    pub fn all_correct_decided(&self, value: O) -> bool {
        self.correct().all(|p| self.decision_of(p) == Some(&value))
    }

    /// The unique decision of the processes in `group`, or `None` if any of
    /// them is undecided or they disagree.
    pub fn unanimous_decision<'a, G>(&self, group: G) -> Option<O>
    where
        G: IntoIterator<Item = &'a ProcessId>,
    {
        let mut result: Option<O> = None;
        for pid in group {
            let v = self.decision_of(*pid)?;
            match &result {
                None => result = Some(v.clone()),
                Some(prev) if prev == v => {}
                Some(_) => return None,
            }
        }
        result
    }

    /// The round at the start of which every correct process had decided,
    /// i.e. the paper's "round before which all processes decide" for
    /// fault-free executions. `None` if some correct process never decided.
    pub fn all_decided_by(&self) -> Option<Round> {
        latest_decision_round(
            self.correct()
                .map(|pid| self.record(pid).decision.as_ref().map(|(_, r)| *r)),
        )
    }

    /// The **message complexity** of this execution: the number of messages
    /// sent by *correct* processes over the whole execution (paper §2).
    ///
    /// All messages sent by correct processes count, including those
    /// receive-omitted by faulty receivers and those sent after decisions.
    pub fn message_complexity(&self) -> u64 {
        self.correct().map(|p| self.record(p).total_sent()).sum()
    }

    /// The number of messages successfully sent by *all* processes
    /// (correct and faulty).
    pub fn total_messages(&self) -> u64 {
        self.records.iter().map(|r| r.total_sent()).sum()
    }

    /// Compresses this execution into `arena`-backed handle form — the
    /// resident representation for holding many executions at once (see
    /// [`CompressedExecution`](crate::CompressedExecution)). Convenience for
    /// [`CompressedExecution::compress`](crate::CompressedExecution::compress);
    /// `compress(arena).hydrate(arena)` round-trips bit-for-bit.
    pub fn compress(&self, arena: &mut crate::PayloadArena<M>) -> crate::CompressedExecution<I, O> {
        crate::CompressedExecution::compress(self, arena)
    }

    /// Checks whether this execution is **indistinguishable** from `other`
    /// to process `pid` (paper §3): same proposal and identical received
    /// messages in every round. Missing trailing fragments are treated as
    /// empty, which is sound for quiescent executions.
    pub fn indistinguishable_to(&self, other: &Execution<I, O, M>, pid: ProcessId) -> bool {
        let a = self.record(pid);
        let b = other.record(pid);
        if a.proposal != b.proposal {
            return false;
        }
        let horizon = self.rounds.max(other.rounds);
        for round in Round::up_to(horizon) {
            let fa = a.fragment(round).map(|f| &f.received);
            let fb = b.fragment(round).map(|f| &f.received);
            let empty = BTreeMap::new();
            if fa.unwrap_or(&empty) != fb.unwrap_or(&empty) {
                return false;
            }
        }
        true
    }

    /// The first round (if any) in which `pid`'s *sending* behavior differs
    /// between `self` and `other`, comparing the full emitted message set
    /// `sent ∪ send_omitted` (which is what the state machine produced).
    ///
    /// This is the quantity illustrated by the paper's Figure 1: an isolated
    /// group's sends may first deviate in the round after isolation starts,
    /// and the rest of the system one round later still.
    pub fn first_send_divergence(
        &self,
        other: &Execution<I, O, M>,
        pid: ProcessId,
    ) -> Option<Round> {
        let a = self.record(pid);
        let b = other.record(pid);
        let horizon = self.rounds.max(other.rounds);
        for round in Round::up_to(horizon) {
            let emitted = |rec: &ProcessRecord<I, O, M>| -> BTreeMap<ProcessId, M> {
                match rec.fragment(round) {
                    None => BTreeMap::new(),
                    Some(f) => {
                        let mut all = f.sent.clone();
                        all.extend(f.send_omitted.clone());
                        all
                    }
                }
            };
            if emitted(a) != emitted(b) {
                return Some(round);
            }
        }
        None
    }

    /// Validates the five execution guarantees of §A.1.6 plus fragment
    /// well-formedness.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ExecutionInvariantError> {
        use ExecutionInvariantError as E;

        if self.records.len() != self.n {
            return Err(E::RecordCount {
                got: self.records.len(),
                expected: self.n,
            });
        }
        // Guarantee: faulty processes.
        if self.faulty.len() > self.t {
            return Err(E::TooManyFaulty {
                got: self.faulty.len(),
                t: self.t,
            });
        }
        if let Some(p) = self.faulty.iter().find(|p| p.index() >= self.n) {
            return Err(E::UnknownProcess { process: *p });
        }

        for pid in ProcessId::all(self.n) {
            let rec = self.record(pid);
            for round in Round::up_to(self.rounds) {
                let Some(frag) = rec.fragment(round) else {
                    continue;
                };

                // Composition / fragment well-formedness: disjoint
                // sent/send-omitted receivers and received/receive-omitted
                // senders; no self traffic.
                if frag.sent.keys().any(|r| frag.send_omitted.contains_key(r)) {
                    return Err(E::OverlappingSendSets {
                        process: pid,
                        round,
                    });
                }
                if frag
                    .received
                    .keys()
                    .any(|s| frag.receive_omitted.contains_key(s))
                {
                    return Err(E::OverlappingReceiveSets {
                        process: pid,
                        round,
                    });
                }
                if frag.sent.contains_key(&pid)
                    || frag.send_omitted.contains_key(&pid)
                    || frag.received.contains_key(&pid)
                    || frag.receive_omitted.contains_key(&pid)
                {
                    return Err(E::SelfMessage {
                        process: pid,
                        round,
                    });
                }

                // Send-validity: a sent message is received or
                // receive-omitted, with the same payload, at the receiver.
                for (receiver, payload) in &frag.sent {
                    if receiver.index() >= self.n {
                        return Err(E::UnknownProcess { process: *receiver });
                    }
                    let rf = self.record(*receiver).fragment(round);
                    let seen = rf.is_some_and(|rf| {
                        rf.received.get(&pid) == Some(payload)
                            || rf.receive_omitted.get(&pid) == Some(payload)
                    });
                    if !seen {
                        return Err(E::SendValidity {
                            sender: pid,
                            receiver: *receiver,
                            round,
                        });
                    }
                }

                // Receive-validity: a received or receive-omitted message was
                // successfully sent, with the same payload, by its sender.
                for (sender, payload) in frag.received.iter().chain(&frag.receive_omitted) {
                    if sender.index() >= self.n {
                        return Err(E::UnknownProcess { process: *sender });
                    }
                    let sf = self.record(*sender).fragment(round);
                    let sent = sf.is_some_and(|sf| sf.sent.get(&pid) == Some(payload));
                    if !sent {
                        return Err(E::ReceiveValidity {
                            sender: *sender,
                            receiver: pid,
                            round,
                        });
                    }
                }

                // Omission-validity: only faulty processes omit.
                if (!frag.send_omitted.is_empty() || !frag.receive_omitted.is_empty())
                    && !self.faulty.contains(&pid)
                {
                    return Err(E::OmissionByCorrect {
                        process: pid,
                        round,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Folds per-process decision rounds into "the round by which everyone had
/// decided": the latest round over the iterator (at least [`Round::FIRST`]),
/// or `None` if any process is undecided. The single definition behind
/// [`Execution::all_decided_by`] and the trace-free
/// [`StatsSink`](crate::StatsSink) — the sink-equivalence contract depends
/// on these never diverging.
pub(crate) fn latest_decision_round(
    rounds: impl IntoIterator<Item = Option<Round>>,
) -> Option<Round> {
    let mut latest = Round::FIRST;
    for round in rounds {
        latest = latest.max(round?);
    }
    Some(latest)
}

/// A violation of the execution guarantees (paper §A.1.6), reported by
/// [`Execution::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecutionInvariantError {
    /// The record vector length differs from `n`.
    RecordCount {
        /// Number of records present.
        got: usize,
        /// Expected number (`n`).
        expected: usize,
    },
    /// More than `t` faulty processes.
    TooManyFaulty {
        /// Number of faulty processes.
        got: usize,
        /// The bound `t`.
        t: usize,
    },
    /// A referenced process id is out of range.
    UnknownProcess {
        /// The out-of-range id.
        process: ProcessId,
    },
    /// A receiver appears in both `sent` and `send_omitted`.
    OverlappingSendSets {
        /// The offending process.
        process: ProcessId,
        /// The offending round.
        round: Round,
    },
    /// A sender appears in both `received` and `receive_omitted`.
    OverlappingReceiveSets {
        /// The offending process.
        process: ProcessId,
        /// The offending round.
        round: Round,
    },
    /// A fragment records a message from a process to itself.
    SelfMessage {
        /// The offending process.
        process: ProcessId,
        /// The offending round.
        round: Round,
    },
    /// A sent message is neither received nor receive-omitted at its
    /// receiver.
    SendValidity {
        /// The message's sender.
        sender: ProcessId,
        /// The message's receiver.
        receiver: ProcessId,
        /// The message's round.
        round: Round,
    },
    /// A received/receive-omitted message was never successfully sent.
    ReceiveValidity {
        /// The message's sender.
        sender: ProcessId,
        /// The message's receiver.
        receiver: ProcessId,
        /// The message's round.
        round: Round,
    },
    /// A correct process committed an omission fault.
    OmissionByCorrect {
        /// The offending process.
        process: ProcessId,
        /// The offending round.
        round: Round,
    },
}

impl fmt::Display for ExecutionInvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ExecutionInvariantError as E;
        match self {
            E::RecordCount { got, expected } => {
                write!(f, "execution has {got} records for {expected} processes")
            }
            E::TooManyFaulty { got, t } => {
                write!(f, "{got} faulty processes exceed t = {t}")
            }
            E::UnknownProcess { process } => write!(f, "unknown process {process}"),
            E::OverlappingSendSets { process, round } => {
                write!(
                    f,
                    "{process} has overlapping sent/send-omitted sets in {round}"
                )
            }
            E::OverlappingReceiveSets { process, round } => {
                write!(
                    f,
                    "{process} has overlapping received/receive-omitted sets in {round}"
                )
            }
            E::SelfMessage { process, round } => {
                write!(f, "{process} has a self-addressed message in {round}")
            }
            E::SendValidity {
                sender,
                receiver,
                round,
            } => {
                write!(
                    f,
                    "send-validity violated for {sender} → {receiver} in {round}"
                )
            }
            E::ReceiveValidity {
                sender,
                receiver,
                round,
            } => {
                write!(
                    f,
                    "receive-validity violated for {sender} → {receiver} in {round}"
                )
            }
            E::OmissionByCorrect { process, round } => {
                write!(
                    f,
                    "correct process {process} committed an omission fault in {round}"
                )
            }
        }
    }
}

impl Error for ExecutionInvariantError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Bit;

    fn frag() -> RoundFragment<u8> {
        RoundFragment::empty()
    }

    /// A minimal hand-built 2-process execution: p0 sends `7` to p1 in
    /// round 1; both propose Zero; p1 decides One.
    fn tiny_execution() -> Execution<Bit, Bit, u8> {
        let mut f0 = frag();
        f0.sent.insert(ProcessId(1), 7);
        let mut f1 = frag();
        f1.received.insert(ProcessId(0), 7);
        Execution {
            n: 2,
            t: 1,
            mode: FaultMode::Omission,
            faulty: BTreeSet::new(),
            records: vec![
                ProcessRecord {
                    proposal: Bit::Zero,
                    decision: None,
                    fragments: vec![f0],
                },
                ProcessRecord {
                    proposal: Bit::Zero,
                    decision: Some((Bit::One, Round(2))),
                    fragments: vec![f1],
                },
            ],
            rounds: 1,
            quiescent: true,
        }
    }

    #[test]
    fn valid_execution_passes_validation() {
        tiny_execution().validate().unwrap();
    }

    #[test]
    fn message_complexity_counts_correct_senders() {
        let exec = tiny_execution();
        assert_eq!(exec.message_complexity(), 1);
        assert_eq!(exec.total_messages(), 1);
    }

    #[test]
    fn faulty_senders_do_not_count_toward_complexity() {
        let mut exec = tiny_execution();
        exec.faulty.insert(ProcessId(0));
        assert_eq!(exec.message_complexity(), 0);
        assert_eq!(exec.total_messages(), 1);
    }

    #[test]
    fn send_validity_detects_dropped_message() {
        let mut exec = tiny_execution();
        exec.records[1].fragments[0].received.clear();
        assert_eq!(
            exec.validate(),
            Err(ExecutionInvariantError::SendValidity {
                sender: ProcessId(0),
                receiver: ProcessId(1),
                round: Round(1),
            })
        );
    }

    #[test]
    fn receive_validity_detects_forged_message() {
        let mut exec = tiny_execution();
        exec.records[0].fragments[0]
            .received
            .insert(ProcessId(1), 9);
        assert_eq!(
            exec.validate(),
            Err(ExecutionInvariantError::ReceiveValidity {
                sender: ProcessId(1),
                receiver: ProcessId(0),
                round: Round(1),
            })
        );
    }

    #[test]
    fn receive_validity_detects_payload_mismatch() {
        let mut exec = tiny_execution();
        *exec.records[1].fragments[0]
            .received
            .get_mut(&ProcessId(0))
            .unwrap() = 8;
        assert!(exec.validate().is_err());
    }

    #[test]
    fn omission_validity_requires_faulty_blame() {
        let mut exec = tiny_execution();
        // Reclassify the delivery as a receive-omission without marking p1
        // faulty.
        let payload = exec.records[1].fragments[0]
            .received
            .remove(&ProcessId(0))
            .unwrap();
        exec.records[1].fragments[0]
            .receive_omitted
            .insert(ProcessId(0), payload);
        assert_eq!(
            exec.validate(),
            Err(ExecutionInvariantError::OmissionByCorrect {
                process: ProcessId(1),
                round: Round(1),
            })
        );
        exec.faulty.insert(ProcessId(1));
        exec.validate().unwrap();
    }

    #[test]
    fn too_many_faulty_is_rejected() {
        let mut exec = tiny_execution();
        exec.faulty.insert(ProcessId(0));
        exec.faulty.insert(ProcessId(1));
        assert_eq!(
            exec.validate(),
            Err(ExecutionInvariantError::TooManyFaulty { got: 2, t: 1 })
        );
    }

    #[test]
    fn self_message_is_rejected() {
        let mut exec = tiny_execution();
        exec.records[0].fragments[0]
            .received
            .insert(ProcessId(0), 1);
        assert_eq!(
            exec.validate(),
            Err(ExecutionInvariantError::SelfMessage {
                process: ProcessId(0),
                round: Round(1)
            })
        );
    }

    #[test]
    fn indistinguishability_compares_proposals_and_inboxes() {
        let a = tiny_execution();
        let mut b = tiny_execution();
        assert!(a.indistinguishable_to(&b, ProcessId(0)));
        assert!(a.indistinguishable_to(&b, ProcessId(1)));
        b.records[1].proposal = Bit::One;
        assert!(!a.indistinguishable_to(&b, ProcessId(1)));
        let mut c = tiny_execution();
        c.records[1].fragments[0].received.insert(ProcessId(0), 8);
        // Note: c is no longer a valid execution, but indistinguishability
        // is a pointwise comparison and does not require validity.
        assert!(!a.indistinguishable_to(&c, ProcessId(1)));
        assert!(a.indistinguishable_to(&c, ProcessId(0)));
    }

    #[test]
    fn indistinguishability_treats_missing_fragments_as_empty() {
        let a = tiny_execution();
        let mut b = tiny_execution();
        b.records[0].fragments.push(frag());
        b.records[1].fragments.push(frag());
        b.rounds = 2;
        assert!(a.indistinguishable_to(&b, ProcessId(0)));
        assert!(a.indistinguishable_to(&b, ProcessId(1)));
    }

    #[test]
    fn unanimous_decision_detects_agreement_and_disagreement() {
        let mut exec = tiny_execution();
        exec.records[0].decision = Some((Bit::One, Round(2)));
        let group: Vec<ProcessId> = vec![ProcessId(0), ProcessId(1)];
        assert_eq!(exec.unanimous_decision(group.iter()), Some(Bit::One));
        exec.records[0].decision = Some((Bit::Zero, Round(2)));
        assert_eq!(exec.unanimous_decision(group.iter()), None);
        exec.records[0].decision = None;
        assert_eq!(exec.unanimous_decision(group.iter()), None);
    }

    #[test]
    fn first_send_divergence_detects_behavior_change() {
        let a = tiny_execution();
        let mut b = tiny_execution();
        assert_eq!(a.first_send_divergence(&b, ProcessId(0)), None);
        b.records[0].fragments[0].sent.insert(ProcessId(1), 8);
        assert_eq!(a.first_send_divergence(&b, ProcessId(0)), Some(Round(1)));
    }

    #[test]
    fn send_omitted_counts_as_emitted_for_divergence() {
        // A message moved from `sent` to `send_omitted` is the *same*
        // state-machine output, so it must not register as divergence.
        let a = tiny_execution();
        let mut b = tiny_execution();
        let payload = b.records[0].fragments[0]
            .sent
            .remove(&ProcessId(1))
            .unwrap();
        b.records[0].fragments[0]
            .send_omitted
            .insert(ProcessId(1), payload);
        b.records[1].fragments[0].received.clear();
        assert_eq!(a.first_send_divergence(&b, ProcessId(0)), None);
    }

    #[test]
    fn all_decided_by_reports_latest_round() {
        let mut exec = tiny_execution();
        assert_eq!(exec.all_decided_by(), None);
        exec.records[0].decision = Some((Bit::One, Round(3)));
        assert_eq!(exec.all_decided_by(), Some(Round(3)));
    }

    #[test]
    fn record_accessors() {
        let exec = tiny_execution();
        assert_eq!(
            exec.outcome(ProcessId(1)),
            DecisionOutcome::Decided {
                value: Bit::One,
                round: Round(2)
            }
        );
        assert_eq!(exec.outcome(ProcessId(0)), DecisionOutcome::Undecided);
        assert_eq!(exec.correct().count(), 2);
        assert!(exec.is_correct(ProcessId(0)));
    }

    #[test]
    fn omission_iterators_enumerate_all_rounds() {
        let mut exec = tiny_execution();
        exec.faulty.insert(ProcessId(1));
        let payload = exec.records[1].fragments[0]
            .received
            .remove(&ProcessId(0))
            .unwrap();
        exec.records[1].fragments[0]
            .receive_omitted
            .insert(ProcessId(0), payload);
        let ro: Vec<_> = exec.records[1].all_receive_omitted().collect();
        assert_eq!(ro, vec![(Round(1), ProcessId(0), &7u8)]);
        assert_eq!(exec.records[1].all_send_omitted().count(), 0);
    }
}
