//! The lock-step synchronous executor.
//!
//! All executions are driven by one engine, [`run_slots`], reached through
//! the [`Scenario`](crate::Scenario) builder: honest state machines and
//! Byzantine behaviors occupy per-process slots, and a
//! [`FaultModel`] decides — observing the unfolding execution — who is
//! corrupted and what happens to each message (deliver, omit, forge, and
//! optionally in what order the round's messages are routed). Routing runs
//! over dense, run-long mailbox slabs (no per-round map allocation), and
//! what gets *recorded* is delegated to a [`TraceSink`]: the
//! [`FullTrace`](crate::FullTrace) sink produces trace-complete
//! [`Execution`](crate::Execution) values that satisfy the model's
//! execution guarantees by construction (re-checkable via
//! [`Execution::validate`](crate::Execution::validate)), while
//! [`StatsSink`](crate::StatsSink) aggregates
//! [`ScenarioStats`](crate::ScenarioStats) without materializing a trace.
//!
use std::collections::BTreeSet;

use crate::error::SimError;
use crate::execution::FaultMode;
use crate::fault::{Envelope, ExecutionView, FaultBudget, FaultDirective, FaultModel, Routing};
use crate::ids::{ProcessId, Round};
use crate::mailbox::{Inbox, Outbox};
use crate::protocol::{ProcessCtx, Protocol};
use crate::scenario::BoxedBehavior;
use crate::sink::{RunSummary, TraceMode, TraceSink};
use crate::value::Payload;

/// Static configuration of an execution run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExecutorConfig {
    /// Number of processes `n`.
    pub n: usize,
    /// Resilience bound `t < n`.
    pub t: usize,
    /// Hard horizon: the executor runs at most this many rounds.
    ///
    /// The paper works with infinite executions; a finite prefix suffices
    /// because every quantity the proofs inspect stabilizes once all correct
    /// processes have decided and no messages are in flight. The executor
    /// detects that quiescent point and stops early (see
    /// [`ExecutorConfig::stop_when_quiescent`]); `max_rounds` bounds
    /// protocols that never quiesce.
    pub max_rounds: u64,
    /// Stop as soon as every correct process has decided and no process
    /// emitted a message for the next round. Defaults to `true`.
    pub stop_when_quiescent: bool,
    /// What stats-producing entry points record (see [`TraceMode`]).
    /// Defaults to [`TraceMode::Stats`]; entry points whose result type
    /// *is* the trace ([`Scenario::run`](crate::ProtocolScenario::run), the
    /// proof constructions) always record a full trace regardless.
    pub trace_mode: TraceMode,
}

impl ExecutorConfig {
    /// Default horizon multiplier: `max_rounds = HORIZON_FACTOR * (t + 2)`.
    /// Every protocol in this repository decides within `t + 2` rounds; the
    /// slack catches slow-downs introduced by adversaries.
    pub const HORIZON_FACTOR: u64 = 4;

    /// Creates a configuration with the default horizon, reporting an
    /// invalid resilience bound as a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidResilience`] unless `t < n`.
    pub fn try_new(n: usize, t: usize) -> Result<Self, SimError> {
        if t >= n {
            return Err(SimError::InvalidResilience { n, t });
        }
        Ok(ExecutorConfig {
            n,
            t,
            max_rounds: Self::HORIZON_FACTOR * (t as u64 + 2) + 8,
            stop_when_quiescent: true,
            trace_mode: TraceMode::default(),
        })
    }

    /// Creates a configuration with the default horizon.
    ///
    /// # Panics
    ///
    /// Panics unless `t < n`. Fallible callers (and
    /// [`Scenario::run`](crate::ProtocolScenario::run), which never panics
    /// on bad parameters) use [`ExecutorConfig::try_new`].
    pub fn new(n: usize, t: usize) -> Self {
        Self::try_new(n, t).unwrap_or_else(|_| panic!("require t < n (got t = {t}, n = {n})"))
    }

    /// Sets the hard horizon.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Enables or disables early stopping at quiescence.
    pub fn with_stop_when_quiescent(mut self, stop: bool) -> Self {
        self.stop_when_quiescent = stop;
        self
    }

    /// Sets the [`TraceMode`] for stats-producing entry points.
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }
}

/// One process slot during a run: either an honest protocol instance or a
/// Byzantine behavior.
pub(crate) enum Slot<'a, P: Protocol> {
    Honest(P),
    Byzantine(BoxedBehavior<'a, P::Input, P::Msg>),
}

impl<P: Protocol> Slot<'_, P> {
    fn propose(&mut self, ctx: &ProcessCtx, proposal: P::Input) -> Outbox<P::Msg> {
        match self {
            Slot::Honest(p) => p.propose(ctx, proposal),
            Slot::Byzantine(b) => b.propose(ctx, proposal),
        }
    }

    fn round(&mut self, ctx: &ProcessCtx, round: Round, inbox: &Inbox<P::Msg>) -> Outbox<P::Msg> {
        match self {
            Slot::Honest(p) => p.round(ctx, round, inbox),
            Slot::Byzantine(b) => b.round(ctx, round, inbox),
        }
    }

    fn decision(&self) -> Option<P::Output> {
        match self {
            Slot::Honest(p) => p.decision(),
            Slot::Byzantine(_) => None,
        }
    }
}

/// The execution engine: drives the slots round by round, routing every
/// message through the [`FaultModel`], enforcing the model's guarantees,
/// and emitting every routing event to `sink`. All adversary flavors —
/// none, omission, Byzantine, crash, mixed, adaptive, mobile, scheduling —
/// reduce to a slot assignment plus a fault model; what the run *produces*
/// is the sink's choice.
///
/// Routing buffers are dense and run-long: one reusable [`Inbox`] slab per
/// process (cleared by the sink each round), outboxes drained by move. A
/// delivered payload is moved — never cloned — from the sender's outbox into
/// the receiver's inbox; only a full-trace sink pays clone costs. The
/// envelope queue for delivery rescheduling is materialized **only** when
/// the model asks for it ([`FaultModel::reorders`]), so non-scheduling
/// models keep the dense per-sender fast path.
///
/// Corruption is dynamic: the model's [`FaultModel::begin_round`]
/// directives evolve the *currently corrupted* set (who may be blamed right
/// now) while the *charged* set — every process ever corrupted — is what
/// the budget bounds and what the produced execution records as its fault
/// set, so adaptive and mobile runs still satisfy `|F| ≤ t`.
pub(crate) fn run_slots<P, S>(
    cfg: &ExecutorConfig,
    mut slots: Vec<Slot<'_, P>>,
    proposals: &[P::Input],
    byzantine: &BTreeSet<ProcessId>,
    model: &mut dyn FaultModel<P::Msg>,
    mode: FaultMode,
    mut sink: S,
) -> Result<S::Output, SimError>
where
    P: Protocol,
    S: TraceSink<P>,
{
    let n = cfg.n;
    if proposals.len() != n {
        return Err(SimError::ProposalCount {
            got: proposals.len(),
            expected: n,
        });
    }

    // Central build-time budget validation: a model whose eventual
    // corruption set can exceed `t` is rejected here, before round 1.
    // Byzantine slot processes are corrupted by construction and count
    // against the same joint budget.
    let (mut corrupted, cap) = match model.budget() {
        FaultBudget::Static(set) => {
            let mut all = set;
            all.extend(byzantine.iter().copied());
            if all.len() > cfg.t {
                return Err(SimError::TooManyFaulty {
                    got: all.len(),
                    t: cfg.t,
                });
            }
            if let Some(p) = all.iter().find(|p| p.index() >= n) {
                return Err(SimError::BehaviorMismatch { process: *p });
            }
            let cap = all.len();
            (all, cap)
        }
        FaultBudget::Adaptive(k) => {
            // A run-time budget the scenario's `t` cannot host is a
            // resilience mismatch of the configuration itself, distinct
            // from an explicit oversize fault set (`TooManyFaulty`).
            if byzantine.len() + k > cfg.t {
                return Err(SimError::InvalidResilience { n, t: cfg.t });
            }
            if let Some(p) = byzantine.iter().find(|p| p.index() >= n) {
                return Err(SimError::BehaviorMismatch { process: *p });
            }
            (byzantine.clone(), byzantine.len() + k)
        }
    };
    let mut charged = corrupted.clone();

    let ctxs: Vec<ProcessCtx> = ProcessId::all(n)
        .map(|pid| ProcessCtx::new(pid, n, cfg.t))
        .collect();

    sink.init(n, proposals);
    let mut decisions: Vec<Option<(P::Output, Round)>> = vec![None; n];

    // Round-1 outboxes come from `propose` (paper §A.1.3: first-round
    // messages depend only on the initial state).
    let mut outboxes: Vec<Outbox<P::Msg>> = Vec::with_capacity(n);
    for (i, slot) in slots.iter_mut().enumerate() {
        let out = slot.propose(&ctxs[i], proposals[i].clone());
        validate_outbox(ProcessId(i), &out, n, Round::FIRST)?;
        outboxes.push(out);
        observe_decision(&mut decisions[i], slot, ProcessId(i), Round::FIRST)?;
    }

    // Run-long dense routing buffers: one inbox slab per process, reused
    // across rounds (the sink drains or clears them via `absorb_inbox`).
    let mut inboxes: Vec<Inbox<P::Msg>> = (0..n).map(|_| Inbox::with_capacity(n)).collect();

    // Routed-traffic counters, the model's observation window.
    let mut sent_count = vec![0u64; n];
    let mut delivered_count = vec![0u64; n];

    let reorders = model.reorders();
    let mut queue: Vec<Envelope> = Vec::new();
    // Reusable per-broadcast routing decisions (one alloc per run).
    let mut routings: Vec<Routing<P::Msg>> = Vec::new();

    let mut rounds_run = 0u64;
    let mut quiescent = false;

    // The model's per-call disclosure; rebuilt per call because the
    // corruption sets and traffic counters evolve between calls.
    macro_rules! view {
        ($round:expr) => {
            ExecutionView {
                round: $round,
                n,
                t: cfg.t,
                corrupted: &corrupted,
                charged: &charged,
                sent: &sent_count,
                delivered: &delivered_count,
            }
        };
    }

    for round in Round::up_to(cfg.max_rounds) {
        rounds_run = round.0;
        sink.begin_round(round);

        let directives = model.begin_round(view!(round));
        if !directives.is_empty() {
            apply_directives::<P, S>(
                directives,
                &mut corrupted,
                &mut charged,
                cap,
                n,
                round,
                &mut sink,
            )?;
        }

        if !reorders {
            // Fast path: route every emitted message in deterministic
            // ascending (sender, receiver) order — the dense drain yields
            // exactly the order the old map iteration did, which keeps
            // stateful (seeded) models reproducible across engines.
            //
            // A pure-broadcast outbox (the dominant shape: every implemented
            // protocol is all-to-all) is fanned out **by reference** from its
            // single payload: the model still observes one `route` call per
            // (sender, receiver) edge in the identical order, but no clone
            // happens until final delivery into the receiver's inbox slot.
            for sender in ProcessId::all(n) {
                let mut outbox = std::mem::take(&mut outboxes[sender.index()]);
                if outbox.unicast_len() == 0 {
                    let Some((payload, mask)) = outbox.take_broadcast() else {
                        continue;
                    };
                    // One virtual call per fan-out: the model batches its
                    // per-receiver decisions (statically dispatched — and
                    // inlined — inside its own `route_broadcast` body).
                    routings.clear();
                    model.route_broadcast(view!(round), sender, &mask, &payload, &mut routings);
                    debug_assert_eq!(
                        routings.len(),
                        mask.len(),
                        "route_broadcast must decide exactly one routing per mask bit"
                    );
                    for (receiver, routing) in mask.iter().zip(routings.drain(..)) {
                        route_shared::<P, S>(
                            routing,
                            round,
                            sender,
                            receiver,
                            &payload,
                            &corrupted,
                            &mut sent_count,
                            &mut delivered_count,
                            &mut inboxes,
                            &mut sink,
                        )?;
                    }
                } else {
                    // Mixed unicast + broadcast round (rare): the merged
                    // drain preserves ascending receiver order, cloning the
                    // broadcast payload per receiver like the legacy path.
                    for (receiver, payload) in outbox.drain() {
                        let routing = model.route(view!(round), sender, receiver, &payload);
                        route_one::<P, S>(
                            routing,
                            round,
                            sender,
                            receiver,
                            payload,
                            &corrupted,
                            &mut sent_count,
                            &mut delivered_count,
                            &mut inboxes,
                            &mut sink,
                        )?;
                    }
                }
            }
        } else {
            // Scheduling path: materialize the round's envelope queue, let
            // the model permute it, and route in the chosen order — later
            // decisions observe the traffic routed earlier in the round.
            queue.clear();
            for sender in ProcessId::all(n) {
                queue.extend(
                    outboxes[sender.index()]
                        .iter()
                        .map(|(receiver, _)| Envelope { sender, receiver }),
                );
            }
            model.schedule(view!(round), &mut queue);
            for envelope in &queue {
                let (sender, receiver) = (envelope.sender(), envelope.receiver());
                let payload = outboxes[sender.index()]
                    .take(receiver)
                    .expect("envelope queues are permutations of the round's messages");
                let routing = model.route(view!(round), sender, receiver, &payload);
                route_one::<P, S>(
                    routing,
                    round,
                    sender,
                    receiver,
                    payload,
                    &corrupted,
                    &mut sent_count,
                    &mut delivered_count,
                    &mut inboxes,
                    &mut sink,
                )?;
            }
        }

        // Deliver inboxes and compute next-round outboxes.
        let mut any_pending = false;
        for (i, slot) in slots.iter_mut().enumerate() {
            let out = slot.round(&ctxs[i], round, &inboxes[i]);
            validate_outbox(ProcessId(i), &out, n, round.next())?;
            any_pending |= !out.is_empty();
            outboxes[i] = out;
            sink.absorb_inbox(round, ProcessId(i), &mut inboxes[i]);
            // Conforming sinks leave the inbox empty (then this is O(1));
            // clearing unconditionally keeps a non-conforming custom sink
            // from corrupting later rounds with stale redeliveries.
            inboxes[i].clear();
            observe_decision(&mut decisions[i], slot, ProcessId(i), round.next())?;
        }

        // Quiescence: nothing in flight and every correct process decided.
        if cfg.stop_when_quiescent && !any_pending {
            let all_correct_decided = ProcessId::all(n)
                .filter(|p| !charged.contains(p))
                .all(|p| decisions[p.index()].is_some());
            if all_correct_decided {
                quiescent = true;
                break;
            }
        }
    }

    if !quiescent {
        // The horizon was reached; the prefix is still a valid execution,
        // but flag whether messages were pending beyond it.
        quiescent = outboxes.iter().all(Outbox::is_empty);
    }

    Ok(sink.finish(RunSummary {
        n,
        t: cfg.t,
        mode,
        faulty: charged,
        decisions,
        sent_counts: sent_count,
        rounds: rounds_run,
        quiescent,
    }))
}

/// Applies one round's corruption directives, enforcing the joint budget:
/// `|charged|` may never exceed the model's validated cap (itself ≤ `t`).
/// The reported bound is the *violated* one — the cap the model declared —
/// not the scenario's `t`, so the diagnostic stays truthful when a model
/// overruns a budget smaller than `t`. Set changes are reported to the
/// sink's (default no-op) directive hooks, in directive order.
#[allow(clippy::too_many_arguments)]
fn apply_directives<P, S>(
    directives: Vec<FaultDirective>,
    corrupted: &mut BTreeSet<ProcessId>,
    charged: &mut BTreeSet<ProcessId>,
    cap: usize,
    n: usize,
    round: Round,
    sink: &mut S,
) -> Result<(), SimError>
where
    P: Protocol,
    S: TraceSink<P>,
{
    for directive in directives {
        match directive {
            FaultDirective::Corrupt(p) => {
                if p.index() >= n {
                    return Err(SimError::BehaviorMismatch { process: p });
                }
                if charged.insert(p) && charged.len() > cap {
                    return Err(SimError::TooManyFaulty {
                        got: charged.len(),
                        t: cap,
                    });
                }
                if corrupted.insert(p) {
                    sink.corrupted(round, p);
                }
            }
            FaultDirective::Release(p) => {
                if corrupted.remove(&p) {
                    sink.released(round, p);
                }
            }
        }
    }
    Ok(())
}

/// Executes one routing decision: enforces blame/forge validity against the
/// currently corrupted set, updates the traffic counters, and emits the
/// sink events. Inlined into both routing paths — this is the per-message
/// hot path and must not cost a call on top of the model's dyn dispatch.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn route_one<P, S>(
    routing: Routing<P::Msg>,
    round: Round,
    sender: ProcessId,
    receiver: ProcessId,
    payload: P::Msg,
    corrupted: &BTreeSet<ProcessId>,
    sent_count: &mut [u64],
    delivered_count: &mut [u64],
    inboxes: &mut [Inbox<P::Msg>],
    sink: &mut S,
) -> Result<(), SimError>
where
    P: Protocol,
    S: TraceSink<P>,
{
    if let Some(blamed) = routing.blamed(sender, receiver) {
        if !corrupted.contains(&blamed) {
            return Err(SimError::OmissionByCorrect {
                process: blamed,
                round,
            });
        }
    }
    match routing {
        Routing::Deliver => {
            sink.sent(round, sender, receiver, &payload);
            sent_count[sender.index()] += 1;
            delivered_count[receiver.index()] += 1;
            inboxes[receiver.index()].deliver(sender, payload);
        }
        Routing::SendOmit => {
            sink.send_omitted(round, sender, receiver, payload);
        }
        Routing::ReceiveOmit => {
            sink.sent(round, sender, receiver, &payload);
            sent_count[sender.index()] += 1;
            sink.receive_omitted(round, sender, receiver, payload);
        }
        Routing::Forge(forged) => {
            if !corrupted.contains(&sender) {
                return Err(SimError::ForgeByCorrect {
                    process: sender,
                    round,
                });
            }
            sink.sent(round, sender, receiver, &forged);
            sent_count[sender.index()] += 1;
            delivered_count[receiver.index()] += 1;
            inboxes[receiver.index()].deliver(sender, forged);
        }
    }
    Ok(())
}

/// [`route_one`] for a broadcast edge: the payload stays shared; a clone
/// happens only when this edge actually delivers into an inbox slot or when
/// a sink takes ownership of an omitted/forged payload. Same blame rules,
/// counters, and sink-event order as the owned path.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn route_shared<P, S>(
    routing: Routing<P::Msg>,
    round: Round,
    sender: ProcessId,
    receiver: ProcessId,
    payload: &P::Msg,
    corrupted: &BTreeSet<ProcessId>,
    sent_count: &mut [u64],
    delivered_count: &mut [u64],
    inboxes: &mut [Inbox<P::Msg>],
    sink: &mut S,
) -> Result<(), SimError>
where
    P: Protocol,
    S: TraceSink<P>,
{
    if let Some(blamed) = routing.blamed(sender, receiver) {
        if !corrupted.contains(&blamed) {
            return Err(SimError::OmissionByCorrect {
                process: blamed,
                round,
            });
        }
    }
    match routing {
        Routing::Deliver => {
            sink.sent(round, sender, receiver, payload);
            sent_count[sender.index()] += 1;
            delivered_count[receiver.index()] += 1;
            inboxes[receiver.index()].deliver(sender, payload.clone());
        }
        Routing::SendOmit => {
            sink.send_omitted(round, sender, receiver, payload.clone());
        }
        Routing::ReceiveOmit => {
            sink.sent(round, sender, receiver, payload);
            sent_count[sender.index()] += 1;
            sink.receive_omitted(round, sender, receiver, payload.clone());
        }
        Routing::Forge(forged) => {
            if !corrupted.contains(&sender) {
                return Err(SimError::ForgeByCorrect {
                    process: sender,
                    round,
                });
            }
            sink.sent(round, sender, receiver, &forged);
            sent_count[sender.index()] += 1;
            delivered_count[receiver.index()] += 1;
            inboxes[receiver.index()].deliver(sender, forged);
        }
    }
    Ok(())
}

fn validate_outbox<M: Payload>(
    sender: ProcessId,
    out: &Outbox<M>,
    n: usize,
    round: Round,
) -> Result<(), SimError> {
    // Broadcast part: O(1) bitmask checks instead of a per-receiver scan.
    let bcast_ok = match out.broadcast_part() {
        None => true,
        Some((_, mask)) => !mask.contains(sender) && mask.max_id().map_or(0, |hi| hi.index()) < n,
    };
    if bcast_ok {
        if out.unicast_len() == 0 {
            return Ok(());
        }
        let mut violation = false;
        for (receiver, _) in out.unicast_iter() {
            if receiver == sender || receiver.index() >= n {
                violation = true;
                break;
            }
        }
        if !violation {
            return Ok(());
        }
    }
    // A violation exists somewhere; rescan the merged view so the reported
    // error is the first offender in ascending receiver order, exactly as
    // the per-receiver engine reported it.
    for (receiver, _) in out.iter() {
        if receiver == sender {
            return Err(SimError::SelfSend {
                process: sender,
                round,
            });
        }
        if receiver.index() >= n {
            return Err(SimError::InvalidReceiver {
                process: sender,
                receiver,
                n,
            });
        }
    }
    Ok(())
}

fn observe_decision<P: Protocol>(
    decision: &mut Option<(P::Output, Round)>,
    slot: &Slot<'_, P>,
    pid: ProcessId,
    round: Round,
) -> Result<(), SimError> {
    match (slot.decision(), &*decision) {
        (Some(v), None) => {
            *decision = Some((v, round));
            Ok(())
        }
        (Some(v), Some((prev, _))) if &v != prev => Err(SimError::DecisionChanged {
            process: pid,
            round,
        }),
        (None, Some(_)) => Err(SimError::DecisionChanged {
            process: pid,
            round,
        }),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{IsolationPlan, NoFaults};
    use crate::scenario::{Adversary, Scenario};
    use crate::value::Bit;

    /// Broadcast-your-proposal-every-round protocol that decides its own
    /// proposal at the start of round `decide_at`.
    #[derive(Clone)]
    struct Chatter {
        proposal: Bit,
        decision: Option<Bit>,
        decide_at: u64,
        stop_after: u64,
    }

    impl Chatter {
        fn new(decide_at: u64, stop_after: u64) -> Self {
            Chatter {
                proposal: Bit::Zero,
                decision: None,
                decide_at,
                stop_after,
            }
        }
    }

    impl Protocol for Chatter {
        type Input = Bit;
        type Output = Bit;
        type Msg = Bit;

        fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
            self.proposal = proposal;
            if self.decide_at <= 1 {
                self.decision = Some(self.proposal);
            }
            let mut out = Outbox::new();
            out.send_to_all(ctx.others(), proposal);
            out
        }

        fn round(&mut self, ctx: &ProcessCtx, round: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
            if round.next().0 >= self.decide_at {
                self.decision = Some(self.proposal);
            }
            let mut out = Outbox::new();
            if round.0 < self.stop_after {
                out.send_to_all(ctx.others(), self.proposal);
            }
            out
        }

        fn decision(&self) -> Option<Bit> {
            self.decision
        }
    }

    fn chatter_scenario(
        n: usize,
        t: usize,
        decide_at: u64,
        stop_after: u64,
        bit: Bit,
    ) -> crate::ProtocolScenario<'static, Chatter, impl Fn(ProcessId) -> Chatter> {
        Scenario::new(n, t)
            .protocol(move |_| Chatter::new(decide_at, stop_after))
            .uniform_input(bit)
    }

    #[test]
    fn fault_free_run_is_valid_and_quiescent() {
        let exec = chatter_scenario(4, 1, 3, 3, Bit::One).run().unwrap();
        exec.validate().unwrap();
        assert!(exec.quiescent);
        assert!(exec.all_correct_decided(Bit::One));
        // 3 rounds of sends × 4 processes × 3 peers.
        assert_eq!(exec.message_complexity(), 36);
    }

    #[test]
    fn executions_are_deterministic() {
        let run = || {
            Scenario::new(5, 2)
                .protocol(|_| Chatter::new(2, 4))
                .inputs([Bit::Zero, Bit::One, Bit::Zero, Bit::One, Bit::Zero])
                .run()
                .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn isolation_produces_valid_omission_execution() {
        let exec = Scenario::new(4, 2)
            .protocol(|_| Chatter::new(3, 3))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::isolation([ProcessId(3)], Round(2)))
            .run()
            .unwrap();
        exec.validate().unwrap();
        // p3 received round-1 traffic but nothing from round 2 onward.
        let rec = exec.record(ProcessId(3));
        assert_eq!(rec.fragments[0].received.len(), 3);
        assert_eq!(rec.fragments[1].received.len(), 0);
        assert_eq!(rec.fragments[1].receive_omitted.len(), 3);
        // Senders recorded the receive-omitted messages as sent.
        assert_eq!(exec.record(ProcessId(0)).fragments[1].sent.len(), 3);
    }

    #[test]
    fn plan_blaming_correct_process_errors() {
        let err = Scenario::new(3, 1)
            .protocol(|_| Chatter::new(2, 2))
            .uniform_input(Bit::Zero)
            // p2 isolated by the plan but not declared faulty.
            .adversary(Adversary::omission(
                [],
                IsolationPlan::new([ProcessId(2)], Round(1)),
            ))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::OmissionByCorrect { .. }));
    }

    #[test]
    fn too_many_faulty_is_rejected() {
        let err = Scenario::new(3, 1)
            .protocol(|_| Chatter::new(2, 2))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::omission([ProcessId(0), ProcessId(1)], NoFaults))
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::TooManyFaulty { got: 2, t: 1 });
    }

    #[test]
    fn proposal_count_mismatch_is_rejected() {
        let err = Scenario::new(3, 1)
            .protocol(|_| Chatter::new(2, 2))
            .inputs([Bit::Zero; 2])
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SimError::ProposalCount {
                got: 2,
                expected: 3
            }
        );
    }

    #[test]
    fn self_send_is_rejected() {
        #[derive(Clone)]
        struct SelfSender;
        impl Protocol for SelfSender {
            type Input = Bit;
            type Output = Bit;
            type Msg = Bit;
            fn propose(&mut self, ctx: &ProcessCtx, _: Bit) -> Outbox<Bit> {
                let mut out = Outbox::new();
                out.send(ctx.id, Bit::Zero);
                out
            }
            fn round(&mut self, _: &ProcessCtx, _: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
                Outbox::new()
            }
            fn decision(&self) -> Option<Bit> {
                Some(Bit::Zero)
            }
        }
        let err = Scenario::new(2, 1)
            .protocol(|_| SelfSender)
            .uniform_input(Bit::Zero)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::SelfSend { .. }));
    }

    #[test]
    fn decision_change_is_rejected() {
        #[derive(Clone)]
        struct FlipFlopper {
            round: u64,
        }
        impl Protocol for FlipFlopper {
            type Input = Bit;
            type Output = Bit;
            type Msg = Bit;
            fn propose(&mut self, _: &ProcessCtx, _: Bit) -> Outbox<Bit> {
                Outbox::new()
            }
            fn round(&mut self, _: &ProcessCtx, _: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
                self.round += 1;
                Outbox::new()
            }
            fn decision(&self) -> Option<Bit> {
                Some(if self.round < 2 { Bit::Zero } else { Bit::One })
            }
        }
        let err = Scenario::new(2, 1)
            .protocol(|_| FlipFlopper { round: 0 })
            .uniform_input(Bit::Zero)
            .stop_when_quiescent(false)
            .max_rounds(4)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::DecisionChanged { .. }));
    }

    #[test]
    fn byzantine_silent_process_is_recorded_without_decisions() {
        use crate::byzantine::SilentByzantine;
        let exec = Scenario::new(3, 1)
            .protocol(|_| Chatter::new(3, 3))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(ProcessId(2), SilentByzantine))
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert_eq!(exec.mode, FaultMode::Byzantine);
        assert!(exec.decision_of(ProcessId(2)).is_none());
        assert_eq!(exec.record(ProcessId(2)).total_sent(), 0);
        // The two honest processes still decide.
        assert_eq!(exec.decision_of(ProcessId(0)), Some(&Bit::One));
        assert_eq!(exec.decision_of(ProcessId(1)), Some(&Bit::One));
    }

    #[test]
    fn horizon_caps_non_quiescent_protocols() {
        // Never stops sending; never decides.
        #[derive(Clone)]
        struct Forever;
        impl Protocol for Forever {
            type Input = Bit;
            type Output = Bit;
            type Msg = Bit;
            fn propose(&mut self, ctx: &ProcessCtx, _: Bit) -> Outbox<Bit> {
                let mut out = Outbox::new();
                out.send_to_all(ctx.others(), Bit::Zero);
                out
            }
            fn round(&mut self, ctx: &ProcessCtx, _: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
                let mut out = Outbox::new();
                out.send_to_all(ctx.others(), Bit::Zero);
                out
            }
            fn decision(&self) -> Option<Bit> {
                None
            }
        }
        let exec = Scenario::new(2, 1)
            .protocol(|_| Forever)
            .uniform_input(Bit::Zero)
            .max_rounds(5)
            .run()
            .unwrap();
        assert_eq!(exec.rounds, 5);
        assert!(!exec.quiescent);
        exec.validate().unwrap();
    }

    #[test]
    fn t_zero_systems_run_fault_free_only() {
        // t = 0: the fault set must be empty, and protocols sized for t = 0
        // decide immediately after their first exchange.
        let exec = chatter_scenario(3, 0, 2, 1, Bit::One).run().unwrap();
        exec.validate().unwrap();
        assert!(exec.all_correct_decided(Bit::One));
        // Any declared fault exceeds t = 0.
        let err = chatter_scenario(3, 0, 2, 1, Bit::One)
            .adversary(Adversary::omission([ProcessId(0)], NoFaults))
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::TooManyFaulty { got: 1, t: 0 });
    }

    #[test]
    fn two_process_system_works() {
        let exec = Scenario::new(2, 1)
            .protocol(|_| Chatter::new(2, 1))
            .inputs([Bit::Zero, Bit::One])
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert_eq!(exec.record(ProcessId(0)).fragments[0].sent.len(), 1);
    }

    #[test]
    fn invalid_receiver_is_rejected() {
        #[derive(Clone)]
        struct WildSender;
        impl Protocol for WildSender {
            type Input = Bit;
            type Output = Bit;
            type Msg = Bit;
            fn propose(&mut self, _: &ProcessCtx, _: Bit) -> Outbox<Bit> {
                let mut out = Outbox::new();
                out.send(ProcessId(99), Bit::Zero);
                out
            }
            fn round(&mut self, _: &ProcessCtx, _: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
                Outbox::new()
            }
            fn decision(&self) -> Option<Bit> {
                Some(Bit::Zero)
            }
        }
        let err = Scenario::new(2, 1)
            .protocol(|_| WildSender)
            .uniform_input(Bit::Zero)
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidReceiver { .. }));
    }

    #[test]
    fn byzantine_behaviors_beyond_the_budget_are_rejected() {
        use crate::byzantine::SilentByzantine;
        // Two behaviors exceed t = 1.
        let err = Scenario::new(3, 1)
            .protocol(|_| Chatter::new(2, 2))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::byzantine([
                (ProcessId(1), Box::new(SilentByzantine) as _),
                (ProcessId(2), Box::new(SilentByzantine) as _),
            ]))
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::TooManyFaulty { got: 2, t: 1 });
    }

    #[test]
    fn fixed_horizon_mode_runs_exactly_max_rounds() {
        let exec = chatter_scenario(3, 1, 2, 2, Bit::Zero)
            .stop_when_quiescent(false)
            .max_rounds(7)
            .run()
            .unwrap();
        assert_eq!(exec.rounds, 7);
        assert!(exec.quiescent, "nothing in flight at the horizon");
        assert_eq!(exec.record(ProcessId(0)).fragments.len(), 7);
    }

    #[test]
    fn quiescent_early_stop_records_round_count() {
        let exec = chatter_scenario(3, 1, 2, 2, Bit::Zero).run().unwrap();
        assert!(exec.quiescent);
        assert!(exec.rounds <= 3);
        assert_eq!(exec.all_decided_by(), Some(Round(2)));
    }

    #[test]
    fn adaptive_adversary_corrupts_top_senders_mid_run() {
        // Heterogeneous chatter: p0 stops after round 1, others keep
        // talking; the adaptive model watches round 1 (all equal) and mutes
        // the two lowest-id senders from round 2 on.
        let exec = Scenario::new(5, 2)
            .protocol(|_| Chatter::new(4, 4))
            .uniform_input(Bit::One)
            .adversary(crate::Adversary::adaptive_worst_case(2))
            .run()
            .unwrap();
        exec.validate().unwrap();
        // Ties in round-1 traffic break toward lower ids.
        assert_eq!(
            exec.faulty,
            [ProcessId(0), ProcessId(1)].into_iter().collect()
        );
        // Round 1 is untouched; from round 2 the victims send-omit.
        assert_eq!(exec.record(ProcessId(0)).fragments[0].sent.len(), 4);
        assert_eq!(exec.record(ProcessId(0)).fragments[1].sent.len(), 0);
        assert_eq!(exec.record(ProcessId(0)).fragments[1].send_omitted.len(), 4);
        // Unpicked processes flow normally and decide.
        assert_eq!(exec.record(ProcessId(2)).fragments[1].sent.len(), 4);
        assert_eq!(exec.decision_of(ProcessId(4)), Some(&Bit::One));
    }

    #[test]
    fn mobile_adversary_moves_corruption_and_charges_the_pool() {
        let pool = [ProcessId(1), ProcessId(2)];
        let exec = Scenario::new(4, 2)
            .protocol(|_| Chatter::new(5, 5))
            .uniform_input(Bit::Zero)
            .adversary(crate::Adversary::mobile(pool, 1))
            .stop_when_quiescent(false)
            .max_rounds(4)
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert_eq!(exec.faulty, pool.into_iter().collect());
        // Round 1: p1 held (send-omits); p2 clean. Round 2: roles swap.
        assert_eq!(exec.record(ProcessId(1)).fragments[0].send_omitted.len(), 3);
        assert_eq!(exec.record(ProcessId(2)).fragments[0].send_omitted.len(), 0);
        assert_eq!(exec.record(ProcessId(1)).fragments[1].send_omitted.len(), 0);
        assert_eq!(exec.record(ProcessId(2)).fragments[1].send_omitted.len(), 3);
        // Released victims send successfully again.
        assert_eq!(exec.record(ProcessId(1)).fragments[1].sent.len(), 3);
    }

    #[test]
    fn scheduler_adversary_caps_the_victim_deterministically() {
        let run = |seed: u64| {
            Scenario::new(5, 1)
                .protocol(|_| Chatter::new(3, 3))
                .uniform_input(Bit::One)
                .adversary(crate::Adversary::scheduler(ProcessId(4), 2, seed))
                .run()
                .unwrap()
        };
        let exec = run(7);
        exec.validate().unwrap();
        assert_eq!(exec.faulty, [ProcessId(4)].into_iter().collect());
        for frag in &exec.record(ProcessId(4)).fragments {
            assert!(frag.received.len() <= 2, "victim capacity exceeded");
            if !frag.receive_omitted.is_empty() {
                assert_eq!(frag.received.len(), 2);
            }
        }
        assert_eq!(run(7), exec, "same seed, same execution");
        // The schedule decides WHICH senders get through: across seeds the
        // surviving sender sets differ (w.h.p. over a few seeds).
        let survivors = |e: &crate::Execution<Bit, Bit, Bit>| {
            e.record(ProcessId(4)).fragments[0]
                .received
                .keys()
                .copied()
                .collect::<Vec<_>>()
        };
        assert!(
            (0..8).any(|s| survivors(&run(s)) != survivors(&exec)),
            "reordering should be observable through the capacity cut"
        );
    }

    #[test]
    fn forging_model_replaces_corrupted_payloads_in_transit() {
        let exec = Scenario::new(3, 1)
            .protocol(|_| Chatter::new(3, 3))
            .uniform_input(Bit::Zero)
            .adversary(crate::Adversary::forge([ProcessId(2)], Bit::One))
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert_eq!(exec.mode, FaultMode::Byzantine);
        // p2's state machine emitted Zero; the wire carried One.
        assert_eq!(
            exec.record(ProcessId(2)).fragments[0].sent[&ProcessId(0)],
            Bit::One
        );
        assert_eq!(
            exec.record(ProcessId(0)).fragments[0].received[&ProcessId(2)],
            Bit::One
        );
    }

    #[test]
    fn forging_by_a_correct_sender_is_rejected() {
        use crate::fault::{ExecutionView, FaultBudget, FaultModel, Routing};
        /// Forges everything but declares nobody corrupted.
        struct RogueForger;
        impl FaultModel<Bit> for RogueForger {
            fn budget(&self) -> FaultBudget {
                FaultBudget::Static(BTreeSet::new())
            }
            fn route(
                &mut self,
                _: ExecutionView<'_>,
                _: ProcessId,
                _: ProcessId,
                _: &Bit,
            ) -> Routing<Bit> {
                Routing::Forge(Bit::One)
            }
        }
        let err = Scenario::new(3, 1)
            .protocol(|_| Chatter::new(2, 2))
            .uniform_input(Bit::Zero)
            .adversary(crate::Adversary::model(RogueForger))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::ForgeByCorrect { .. }));
    }

    #[test]
    fn adaptive_budgets_exceeding_t_are_invalid_resilience_at_build_time() {
        // Satellite regression: a fault model whose eventual corruption set
        // can exceed `t` surfaces `InvalidResilience` before round 1 — it
        // never panics mid-run.
        let err = Scenario::new(4, 1)
            .protocol(|_| Chatter::new(2, 2))
            .uniform_input(Bit::Zero)
            .adversary(crate::Adversary::adaptive_worst_case(2))
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::InvalidResilience { n: 4, t: 1 });

        // The mobile pool is the eventual corruption set.
        let err = Scenario::new(4, 1)
            .protocol(|_| Chatter::new(2, 2))
            .uniform_input(Bit::Zero)
            .adversary(crate::Adversary::mobile([ProcessId(1), ProcessId(2)], 1))
            .run_stats()
            .unwrap_err();
        assert_eq!(err, SimError::InvalidResilience { n: 4, t: 1 });

        // Joint accounting: an in-budget adaptive model plus a Byzantine
        // slot behavior still must fit inside t together.
        use crate::byzantine::SilentByzantine;
        let err = Scenario::new(4, 1)
            .protocol(|_| Chatter::new(2, 2))
            .uniform_input(Bit::Zero)
            .adversary(crate::Adversary::model_with_behaviors(
                [(ProcessId(3), Box::new(SilentByzantine) as _)],
                crate::fault::AdaptiveWorstCase::new(1),
            ))
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::InvalidResilience { n: 4, t: 1 });
    }

    #[test]
    fn directives_beyond_the_declared_budget_are_rejected_mid_run() {
        use crate::fault::{ExecutionView, FaultBudget, FaultDirective, FaultModel, Routing};
        /// Declares a budget of 1 but tries to corrupt two processes.
        struct Glutton;
        impl FaultModel<Bit> for Glutton {
            fn budget(&self) -> FaultBudget {
                FaultBudget::Adaptive(1)
            }
            fn begin_round(&mut self, view: ExecutionView<'_>) -> Vec<FaultDirective> {
                if view.round == Round(1) {
                    vec![
                        FaultDirective::Corrupt(ProcessId(0)),
                        FaultDirective::Corrupt(ProcessId(1)),
                    ]
                } else {
                    Vec::new()
                }
            }
            fn route(
                &mut self,
                _: ExecutionView<'_>,
                _: ProcessId,
                _: ProcessId,
                _: &Bit,
            ) -> Routing<Bit> {
                Routing::Deliver
            }
        }
        let err = Scenario::new(4, 2)
            .protocol(|_| Chatter::new(2, 2))
            .uniform_input(Bit::Zero)
            .adversary(crate::Adversary::model(Glutton))
            .run()
            .unwrap_err();
        // The reported bound is the declared cap (1), not the scenario's
        // t (2) — the cap is what the second directive actually violated.
        assert_eq!(err, SimError::TooManyFaulty { got: 2, t: 1 });
    }

    #[test]
    fn released_processes_stay_in_the_fault_set_but_cannot_be_blamed() {
        use crate::fault::{ExecutionView, FaultBudget, FaultDirective, FaultModel, Routing};
        /// Corrupts p0 in round 1, releases it in round 2, then still
        /// blames it in round 2 — an adversary bug the engine must catch.
        struct Amnesiac;
        impl FaultModel<Bit> for Amnesiac {
            fn budget(&self) -> FaultBudget {
                FaultBudget::Adaptive(1)
            }
            fn begin_round(&mut self, view: ExecutionView<'_>) -> Vec<FaultDirective> {
                match view.round {
                    Round(1) => vec![FaultDirective::Corrupt(ProcessId(0))],
                    Round(2) => vec![FaultDirective::Release(ProcessId(0))],
                    _ => Vec::new(),
                }
            }
            fn route(
                &mut self,
                view: ExecutionView<'_>,
                sender: ProcessId,
                _: ProcessId,
                _: &Bit,
            ) -> Routing<Bit> {
                if sender == ProcessId(0) && view.round >= Round(2) {
                    Routing::SendOmit
                } else {
                    Routing::Deliver
                }
            }
        }
        let err = Scenario::new(3, 1)
            .protocol(|_| Chatter::new(3, 3))
            .uniform_input(Bit::Zero)
            .adversary(crate::Adversary::model(Amnesiac))
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SimError::OmissionByCorrect {
                process: ProcessId(0),
                round: Round(2)
            }
        );
    }

    #[test]
    fn try_new_reports_invalid_resilience() {
        assert_eq!(
            ExecutorConfig::try_new(3, 3).unwrap_err(),
            SimError::InvalidResilience { n: 3, t: 3 }
        );
        assert!(ExecutorConfig::try_new(3, 2).is_ok());
    }
}
