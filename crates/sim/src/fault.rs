//! Execution-observing fault models: the adaptive adversary layer.
//!
//! The paper's lower bound is driven by adversaries that *react* to the
//! unfolding execution. A [`FaultModel`] is the executor's single adversary
//! interface: every round it receives an [`ExecutionView`] (round number,
//! routed traffic so far, current corruption set, fault budget `t`) and
//! answers with
//!
//! * **corruption directives** ([`FaultModel::begin_round`]): corrupt a
//!   process now (adaptive corruption, chosen mid-run from the trace) or
//!   release it again (mobile corruption — released processes stay
//!   *charged* against the budget, so `|ever-corrupted| ≤ t` and every
//!   produced [`Execution`](crate::Execution) still validates);
//! * **routing decisions** ([`FaultModel::route`]): deliver, send-omit,
//!   receive-omit ([`Routing`] mirrors the omission model's
//!   [`Fate`](crate::Fate)) or **forge** — replace a corrupted sender's
//!   payload in transit (the routing-level Byzantine capability);
//! * optionally a **delivery schedule** ([`FaultModel::schedule`]): a
//!   permutation of the round's routing queue, which is what makes
//!   message-scheduling adversaries (rushing, bounded-capacity links)
//!   expressible — later routing decisions observe the traffic routed
//!   earlier in the same round.
//!
//! The legacy static adversaries are canned models: [`PlannedFaults`] wraps
//! a fixed fault set plus an [`OmissionPlan`], and the
//! [`Adversary`](crate::Adversary) constructors build exactly these, so
//! every pre-trait call site keeps its bit-identical behavior. The adaptive
//! regime studied in "Breaking the O(n²) Bit Barrier" and "Make Every Word
//! Count" is covered by [`AdaptiveWorstCase`] (corrupt the chattiest
//! processes after observing round 1), [`MobileOmission`] (corruption that
//! moves between processes under a budget), and [`SchedulerOmission`]
//! (seeded delivery reordering against a capacity-limited victim).
//!
//! Budgets are validated **centrally at build time**: a model whose
//! eventual corruption set can exceed `t` is rejected with a typed
//! [`SimError`](crate::SimError) before round 1, never a mid-run panic.

use std::collections::BTreeSet;

use crate::execution::FaultMode;
use crate::ids::{ProcessId, Round};
use crate::mailbox::ReceiverMask;
use crate::plan::{Fate, OmissionPlan};
use crate::rng::SimRng;
use crate::value::Payload;

/// What one routing decision does to a message in transit.
///
/// The first three variants mirror the omission model's
/// [`Fate`](crate::Fate); [`Routing::Forge`] is the routing-level Byzantine
/// capability: the (corrupted) sender's payload is replaced in transit and
/// the receiver observes the forged message as a regular delivery.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Routing<M> {
    /// Deliver the message unchanged.
    Deliver,
    /// The (corrupted) sender omits sending.
    SendOmit,
    /// The message is sent, but the (corrupted) receiver omits receiving it.
    ReceiveOmit,
    /// Replace the (corrupted) sender's payload with a forged one; the
    /// receiver sees the forged payload as a normal delivery.
    Forge(M),
}

impl<M> Routing<M> {
    /// Which process an omission decision blames, if any. Forging blames the
    /// sender but is checked separately (it is not an omission).
    pub fn blamed(&self, sender: ProcessId, receiver: ProcessId) -> Option<ProcessId> {
        match self {
            Routing::Deliver | Routing::Forge(_) => None,
            Routing::SendOmit => Some(sender),
            Routing::ReceiveOmit => Some(receiver),
        }
    }
}

impl<M> From<Fate> for Routing<M> {
    fn from(fate: Fate) -> Self {
        match fate {
            Fate::Deliver => Routing::Deliver,
            Fate::SendOmit => Routing::SendOmit,
            Fate::ReceiveOmit => Routing::ReceiveOmit,
        }
    }
}

/// The ceiling on the processes a [`FaultModel`] may ever corrupt,
/// validated against `t` before round 1.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FaultBudget {
    /// The model corrupts exactly this set, from round 1 on (the legacy
    /// static regime). An oversize set is rejected with
    /// [`SimError::TooManyFaulty`](crate::SimError::TooManyFaulty), exactly
    /// as the pre-trait executor did.
    Static(BTreeSet<ProcessId>),
    /// The model picks up to this many victims at run time (adaptive /
    /// mobile regimes). A budget above `t` is a configuration-level
    /// resilience mismatch and is rejected with
    /// [`SimError::InvalidResilience`](crate::SimError::InvalidResilience)
    /// at build time.
    Adaptive(usize),
}

/// A corruption-set update emitted by [`FaultModel::begin_round`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultDirective {
    /// Corrupt the process from this round on. Charges the budget unless
    /// the process was corrupted before (re-corruption is free).
    Corrupt(ProcessId),
    /// Release the process: it is no longer *currently* corrupted (the
    /// model must stop blaming it) but stays charged against the budget —
    /// it remains in the execution's fault set, which is what keeps mobile
    /// corruption inside the model's `|F| ≤ t` guarantee.
    Release(ProcessId),
}

/// One emitted message awaiting routing, as shown to
/// [`FaultModel::schedule`].
///
/// Deliberately neither `Clone` nor constructible outside the crate: a
/// scheduler can only *permute* the queue (`swap`, `sort`, `rotate`,
/// `reverse`), never inject, duplicate, or drop envelopes — dropping and
/// forging go through [`FaultModel::route`] where they are budget-checked.
#[derive(PartialEq, Eq, Debug)]
pub struct Envelope {
    pub(crate) sender: ProcessId,
    pub(crate) receiver: ProcessId,
}

impl Envelope {
    /// The message's sender.
    pub fn sender(&self) -> ProcessId {
        self.sender
    }

    /// The message's receiver.
    pub fn receiver(&self) -> ProcessId {
        self.receiver
    }
}

/// The executor's per-round disclosure to the fault model: everything a
/// full-information adaptive adversary is entitled to observe.
#[derive(Clone, Copy, Debug)]
pub struct ExecutionView<'a> {
    /// The round being routed.
    pub round: Round,
    /// Number of processes `n`.
    pub n: usize,
    /// The fault budget `t`.
    pub t: usize,
    /// Processes currently corrupted (blamable right now).
    pub corrupted: &'a BTreeSet<ProcessId>,
    /// Processes ever corrupted — the budget accounting set and the
    /// execution's eventual fault set.
    pub charged: &'a BTreeSet<ProcessId>,
    /// Routed traffic so far: per-sender count of successfully sent
    /// messages (delivered or receive-omitted), including the already
    /// routed prefix of the current round.
    pub sent: &'a [u64],
    /// Routed traffic so far: per-receiver count of delivered messages,
    /// including the already routed prefix of the current round.
    pub delivered: &'a [u64],
}

/// An execution-observing adversary strategy.
///
/// The executor consults the model in a fixed deterministic order:
/// [`budget`](FaultModel::budget) once before round 1, then per round
/// [`begin_round`](FaultModel::begin_round) (before any routing),
/// [`schedule`](FaultModel::schedule) (only if
/// [`reorders`](FaultModel::reorders) is `true`), and
/// [`route`](FaultModel::route) once per emitted message in routing order —
/// ascending `(sender, receiver)` unless rescheduled. Stateful (seeded)
/// models are therefore reproducible.
pub trait FaultModel<M> {
    /// The ceiling on the processes this model may ever corrupt; validated
    /// against `t` before round 1.
    fn budget(&self) -> FaultBudget;

    /// The [`FaultMode`] stamped on produced executions. Defaults to
    /// [`FaultMode::Omission`]; forging models report
    /// [`FaultMode::Byzantine`].
    fn mode(&self) -> FaultMode {
        FaultMode::Omission
    }

    /// Called at the start of every round, before any routing. Directives
    /// are applied in order and budget-checked by the executor.
    fn begin_round(&mut self, _view: ExecutionView<'_>) -> Vec<FaultDirective> {
        Vec::new()
    }

    /// `true` iff this model may reorder routing within a round. The
    /// executor materializes an envelope queue (and calls
    /// [`schedule`](FaultModel::schedule)) only when set, so non-scheduling
    /// models keep the dense per-sender fast path.
    fn reorders(&self) -> bool {
        false
    }

    /// Permutes the round's routing queue. Only consulted when
    /// [`reorders`](FaultModel::reorders) is `true`.
    fn schedule(&mut self, _view: ExecutionView<'_>, _queue: &mut [Envelope]) {}

    /// Decides the routing of one message, consulted once per emitted
    /// message. Omissions may only blame *currently* corrupted processes;
    /// forging requires a currently corrupted sender.
    fn route(
        &mut self,
        view: ExecutionView<'_>,
        sender: ProcessId,
        receiver: ProcessId,
        payload: &M,
    ) -> Routing<M>;

    /// Decides the routing of one broadcast fan-out: pushes exactly one
    /// [`Routing`] per mask bit into `out`, in ascending receiver order.
    ///
    /// The executor calls this **once per broadcasting sender** instead of
    /// [`route`](FaultModel::route) per edge, so the default body's `route`
    /// calls dispatch statically (and inline) inside each concrete model —
    /// the per-edge virtual call disappears from the all-to-all hot path.
    /// `view` is the disclosure as of the start of the fan-out; the traffic
    /// counters exclude the fan-out's own edges (they are applied after the
    /// decisions come back), which is observationally identical for every
    /// model that does not read the counters between two edges of a single
    /// sender's emission — no shipped model does.
    fn route_broadcast(
        &mut self,
        view: ExecutionView<'_>,
        sender: ProcessId,
        mask: &ReceiverMask,
        payload: &M,
        out: &mut Vec<Routing<M>>,
    ) {
        out.extend(
            mask.iter()
                .map(|receiver| self.route(view, sender, receiver, payload)),
        );
    }
}

impl<M, T: FaultModel<M> + ?Sized> FaultModel<M> for &mut T {
    fn budget(&self) -> FaultBudget {
        (**self).budget()
    }
    fn mode(&self) -> FaultMode {
        (**self).mode()
    }
    fn begin_round(&mut self, view: ExecutionView<'_>) -> Vec<FaultDirective> {
        (**self).begin_round(view)
    }
    fn reorders(&self) -> bool {
        (**self).reorders()
    }
    fn schedule(&mut self, view: ExecutionView<'_>, queue: &mut [Envelope]) {
        (**self).schedule(view, queue)
    }
    fn route(
        &mut self,
        view: ExecutionView<'_>,
        sender: ProcessId,
        receiver: ProcessId,
        payload: &M,
    ) -> Routing<M> {
        (**self).route(view, sender, receiver, payload)
    }
    fn route_broadcast(
        &mut self,
        view: ExecutionView<'_>,
        sender: ProcessId,
        mask: &ReceiverMask,
        payload: &M,
        out: &mut Vec<Routing<M>>,
    ) {
        (**self).route_broadcast(view, sender, mask, payload, out)
    }
}

impl<M, T: FaultModel<M> + ?Sized> FaultModel<M> for Box<T> {
    fn budget(&self) -> FaultBudget {
        (**self).budget()
    }
    fn mode(&self) -> FaultMode {
        (**self).mode()
    }
    fn begin_round(&mut self, view: ExecutionView<'_>) -> Vec<FaultDirective> {
        (**self).begin_round(view)
    }
    fn reorders(&self) -> bool {
        (**self).reorders()
    }
    fn schedule(&mut self, view: ExecutionView<'_>, queue: &mut [Envelope]) {
        (**self).schedule(view, queue)
    }
    fn route(
        &mut self,
        view: ExecutionView<'_>,
        sender: ProcessId,
        receiver: ProcessId,
        payload: &M,
    ) -> Routing<M> {
        (**self).route(view, sender, receiver, payload)
    }
    fn route_broadcast(
        &mut self,
        view: ExecutionView<'_>,
        sender: ProcessId,
        mask: &ReceiverMask,
        payload: &M,
        out: &mut Vec<Routing<M>>,
    ) {
        (**self).route_broadcast(view, sender, mask, payload, out)
    }
}

/// The legacy static adversary as a fault model: a fixed fault set plus an
/// [`OmissionPlan`] deciding each message's fate.
///
/// Every pre-trait [`Adversary`](crate::Adversary) flavor reduces to this —
/// fault-free (`PlannedFaults::none()`), omission, crash, Byzantine (empty
/// plan; the behaviors occupy slots), and mixed — and the plan is consulted
/// with exactly the arguments and in exactly the order of the pre-trait
/// executor, so executions are bit-identical.
#[derive(Clone, Debug)]
pub struct PlannedFaults<P> {
    faulty: BTreeSet<ProcessId>,
    plan: P,
    /// Scratch buffer for batched fan-out decisions (reused per broadcast).
    fates: Vec<Fate>,
}

impl<P> PlannedFaults<P> {
    /// A model corrupting `faulty` (from round 1), routing via `plan`.
    pub fn new(faulty: impl IntoIterator<Item = ProcessId>, plan: P) -> Self {
        PlannedFaults {
            faulty: faulty.into_iter().collect(),
            plan,
            fates: Vec::new(),
        }
    }

    /// The static fault set.
    pub fn faulty(&self) -> &BTreeSet<ProcessId> {
        &self.faulty
    }
}

impl PlannedFaults<crate::plan::NoFaults> {
    /// The fault-free model: nobody is corrupted, everything is delivered.
    pub fn none() -> Self {
        PlannedFaults::new([], crate::plan::NoFaults)
    }
}

impl<M, P: OmissionPlan<M>> FaultModel<M> for PlannedFaults<P> {
    fn budget(&self) -> FaultBudget {
        FaultBudget::Static(self.faulty.clone())
    }

    fn route(
        &mut self,
        view: ExecutionView<'_>,
        sender: ProcessId,
        receiver: ProcessId,
        payload: &M,
    ) -> Routing<M> {
        self.plan.fate(view.round, sender, receiver, payload).into()
    }

    fn route_broadcast(
        &mut self,
        view: ExecutionView<'_>,
        sender: ProcessId,
        mask: &ReceiverMask,
        payload: &M,
        out: &mut Vec<Routing<M>>,
    ) {
        self.fates.clear();
        self.plan
            .fate_broadcast(view.round, sender, mask, payload, &mut self.fates);
        out.extend(self.fates.drain(..).map(Routing::from));
    }
}

/// The adaptive worst-case adversary: it watches round 1 fault-free,
/// then corrupts the `budget` processes that sent the most observed
/// traffic (ties broken toward lower ids) and mutes them — every message
/// they emit from the strike round on is send-omitted.
///
/// This is the "corrupt the chattiest" strategy adaptive-adversary papers
/// build on: against protocols whose progress is carried by a few loud
/// processes (leaders, kings, designated senders) it is maximally
/// disruptive, while static adversaries must guess the hot set in advance.
#[derive(Clone, Debug)]
pub struct AdaptiveWorstCase {
    budget: usize,
    strike: Round,
    victims: BTreeSet<ProcessId>,
}

impl AdaptiveWorstCase {
    /// Corrupts the `budget` top senders at the start of round 2.
    pub fn new(budget: usize) -> Self {
        Self::striking_at(budget, Round(2))
    }

    /// Corrupts the `budget` top senders (of all traffic observed so far)
    /// at the start of `strike`.
    pub fn striking_at(budget: usize, strike: Round) -> Self {
        AdaptiveWorstCase {
            budget,
            strike,
            victims: BTreeSet::new(),
        }
    }

    /// The victims picked at strike time (empty before the strike round).
    pub fn victims(&self) -> &BTreeSet<ProcessId> {
        &self.victims
    }
}

impl<M> FaultModel<M> for AdaptiveWorstCase {
    fn budget(&self) -> FaultBudget {
        FaultBudget::Adaptive(self.budget)
    }

    fn begin_round(&mut self, view: ExecutionView<'_>) -> Vec<FaultDirective> {
        if view.round != self.strike || self.budget == 0 {
            return Vec::new();
        }
        // Rank senders by observed traffic, descending; ties toward lower
        // ids (sort is stable and ids ascend).
        let mut ranked: Vec<ProcessId> = ProcessId::all(view.n).collect();
        ranked.sort_by_key(|p| std::cmp::Reverse(view.sent[p.index()]));
        self.victims = ranked.into_iter().take(self.budget).collect();
        self.victims
            .iter()
            .map(|p| FaultDirective::Corrupt(*p))
            .collect()
    }

    fn route(
        &mut self,
        view: ExecutionView<'_>,
        sender: ProcessId,
        _receiver: ProcessId,
        _payload: &M,
    ) -> Routing<M> {
        if view.round >= self.strike && self.victims.contains(&sender) {
            Routing::SendOmit
        } else {
            Routing::Deliver
        }
    }
}

/// The mobile adversary: corruption moves through a pool of victims, one at
/// a time, dwelling `dwell` rounds on each before releasing it and
/// corrupting the next.
///
/// Budget accounting: the pool is the eventual charged set, so the model
/// declares an adaptive budget of `|pool|` — a pool larger than `t` is
/// rejected at build time. The *currently* corrupted set has size ≤ 1;
/// released victims behave correctly again but stay in the execution's
/// fault set (they omitted messages while held).
#[derive(Clone, Debug)]
pub struct MobileOmission {
    pool: Vec<ProcessId>,
    dwell: u64,
    active: Option<ProcessId>,
}

impl MobileOmission {
    /// Visits `pool` in order, `dwell` rounds per victim (cycling). The
    /// held victim send-omits everything. Duplicate pool entries are
    /// dropped (first occurrence wins); `dwell` is clamped to ≥ 1.
    pub fn new(pool: impl IntoIterator<Item = ProcessId>, dwell: u64) -> Self {
        let mut seen = BTreeSet::new();
        let pool: Vec<ProcessId> = pool.into_iter().filter(|p| seen.insert(*p)).collect();
        MobileOmission {
            pool,
            dwell: dwell.max(1),
            active: None,
        }
    }

    /// The victim pool, in visiting order.
    pub fn pool(&self) -> &[ProcessId] {
        &self.pool
    }

    /// The currently held victim.
    pub fn active(&self) -> Option<ProcessId> {
        self.active
    }
}

impl<M> FaultModel<M> for MobileOmission {
    fn budget(&self) -> FaultBudget {
        FaultBudget::Adaptive(self.pool.len())
    }

    fn begin_round(&mut self, view: ExecutionView<'_>) -> Vec<FaultDirective> {
        if self.pool.is_empty() {
            return Vec::new();
        }
        let slot = ((view.round.0 - 1) / self.dwell) as usize;
        let next = self.pool[slot % self.pool.len()];
        if self.active == Some(next) {
            return Vec::new();
        }
        let mut directives = Vec::with_capacity(2);
        if let Some(prev) = self.active {
            directives.push(FaultDirective::Release(prev));
        }
        directives.push(FaultDirective::Corrupt(next));
        self.active = Some(next);
        directives
    }

    fn route(
        &mut self,
        _view: ExecutionView<'_>,
        sender: ProcessId,
        _receiver: ProcessId,
        _payload: &M,
    ) -> Routing<M> {
        if self.active == Some(sender) {
            Routing::SendOmit
        } else {
            Routing::Deliver
        }
    }
}

/// The message-scheduling adversary: a seeded permutation of every round's
/// delivery order, against a capacity-limited victim that receive-omits all
/// but the first `cap` messages addressed to it *in scheduled order*.
///
/// Which senders get through to the victim therefore depends on the
/// schedule — the observable essence of adversarial message scheduling
/// (bounded-capacity links, rushing delivery) — while every other process
/// sees a full round. Deterministic for a fixed seed.
#[derive(Clone, Debug)]
pub struct SchedulerOmission {
    victim: ProcessId,
    cap: usize,
    rng: SimRng,
    victim_deliveries: usize,
}

impl SchedulerOmission {
    /// Shuffles each round's routing queue with a generator seeded by
    /// `seed`; `victim` receives at most `cap` messages per round.
    pub fn new(victim: ProcessId, cap: usize, seed: u64) -> Self {
        SchedulerOmission {
            victim,
            cap,
            rng: SimRng::seed_from_u64(seed),
            victim_deliveries: 0,
        }
    }

    /// The capacity-limited victim.
    pub fn victim(&self) -> ProcessId {
        self.victim
    }
}

impl<M> FaultModel<M> for SchedulerOmission {
    fn budget(&self) -> FaultBudget {
        FaultBudget::Static([self.victim].into_iter().collect())
    }

    fn begin_round(&mut self, _view: ExecutionView<'_>) -> Vec<FaultDirective> {
        self.victim_deliveries = 0;
        Vec::new()
    }

    fn reorders(&self) -> bool {
        true
    }

    fn schedule(&mut self, _view: ExecutionView<'_>, queue: &mut [Envelope]) {
        // Fisher-Yates on the envelope queue: a uniform seeded permutation.
        for i in (1..queue.len()).rev() {
            let j = self.rng.gen_index(0, i + 1);
            queue.swap(i, j);
        }
    }

    fn route(
        &mut self,
        _view: ExecutionView<'_>,
        _sender: ProcessId,
        receiver: ProcessId,
        _payload: &M,
    ) -> Routing<M> {
        if receiver == self.victim {
            if self.victim_deliveries < self.cap {
                self.victim_deliveries += 1;
                Routing::Deliver
            } else {
                Routing::ReceiveOmit
            }
        } else {
            Routing::Deliver
        }
    }
}

/// The routing-level forging adversary: every message emitted by a
/// corrupted sender is replaced in transit with a fixed forged payload.
///
/// This is Byzantine power expressed at the fault layer rather than the
/// slot layer — the corrupted processes still run the honest state machine,
/// but the network lies on their behalf. Unforgeable signature objects
/// inside `M` still cannot be fabricated: the forged payload is a value the
/// adversary constructed up front from capabilities it legitimately has.
#[derive(Clone, Debug)]
pub struct ForgingFaults<M> {
    faulty: BTreeSet<ProcessId>,
    forged: M,
}

impl<M: Payload> ForgingFaults<M> {
    /// Replaces every message sent by a member of `faulty` with `forged`.
    pub fn new(faulty: impl IntoIterator<Item = ProcessId>, forged: M) -> Self {
        ForgingFaults {
            faulty: faulty.into_iter().collect(),
            forged,
        }
    }
}

impl<M: Payload> FaultModel<M> for ForgingFaults<M> {
    fn budget(&self) -> FaultBudget {
        FaultBudget::Static(self.faulty.clone())
    }

    fn mode(&self) -> FaultMode {
        FaultMode::Byzantine
    }

    fn route(
        &mut self,
        _view: ExecutionView<'_>,
        sender: ProcessId,
        _receiver: ProcessId,
        _payload: &M,
    ) -> Routing<M> {
        if self.faulty.contains(&sender) {
            Routing::Forge(self.forged.clone())
        } else {
            Routing::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::IsolationPlan;

    fn view<'a>(
        round: Round,
        n: usize,
        corrupted: &'a BTreeSet<ProcessId>,
        charged: &'a BTreeSet<ProcessId>,
        sent: &'a [u64],
        delivered: &'a [u64],
    ) -> ExecutionView<'a> {
        ExecutionView {
            round,
            n,
            t: n / 3,
            corrupted,
            charged,
            sent,
            delivered,
        }
    }

    #[test]
    fn planned_faults_mirror_the_wrapped_plan() {
        let group = [ProcessId(2)];
        let mut model = PlannedFaults::new(group, IsolationPlan::new(group, Round(2)));
        assert_eq!(
            FaultModel::<u8>::budget(&model),
            FaultBudget::Static(group.into_iter().collect())
        );
        let (c, g, s, d) = (BTreeSet::new(), BTreeSet::new(), [0u64; 3], [0u64; 3]);
        let v1 = view(Round(1), 3, &c, &g, &s, &d);
        let v2 = view(Round(2), 3, &c, &g, &s, &d);
        assert_eq!(
            model.route(v1, ProcessId(0), ProcessId(2), &9u8),
            Routing::Deliver
        );
        assert_eq!(
            model.route(v2, ProcessId(0), ProcessId(2), &9u8),
            Routing::ReceiveOmit
        );
    }

    #[test]
    fn adaptive_worst_case_picks_top_senders_with_ties_toward_low_ids() {
        let mut model = AdaptiveWorstCase::new(2);
        let (c, g) = (BTreeSet::new(), BTreeSet::new());
        let sent = [3u64, 7, 3, 1];
        let delivered = [0u64; 4];
        // Round 1: silent observation.
        let directives =
            FaultModel::<u8>::begin_round(&mut model, view(Round(1), 4, &c, &g, &sent, &delivered));
        assert!(directives.is_empty());
        // Round 2: corrupt p1 (7 sends) and p0 (3 sends, ties beat p2 by id).
        let directives =
            FaultModel::<u8>::begin_round(&mut model, view(Round(2), 4, &c, &g, &sent, &delivered));
        assert_eq!(
            directives,
            vec![
                FaultDirective::Corrupt(ProcessId(0)),
                FaultDirective::Corrupt(ProcessId(1)),
            ]
        );
        // Victims are muted from the strike round on; others flow.
        let v2 = view(Round(2), 4, &c, &g, &sent, &delivered);
        assert_eq!(
            model.route(v2, ProcessId(1), ProcessId(3), &0u8),
            Routing::SendOmit
        );
        assert_eq!(
            model.route(v2, ProcessId(2), ProcessId(3), &0u8),
            Routing::Deliver
        );
    }

    #[test]
    fn mobile_omission_moves_and_releases() {
        let mut model = MobileOmission::new([ProcessId(0), ProcessId(2)], 2);
        assert_eq!(FaultModel::<u8>::budget(&model), FaultBudget::Adaptive(2));
        let (c, g, s, d) = (BTreeSet::new(), BTreeSet::new(), [0u64; 3], [0u64; 3]);
        let d1 = FaultModel::<u8>::begin_round(&mut model, view(Round(1), 3, &c, &g, &s, &d));
        assert_eq!(d1, vec![FaultDirective::Corrupt(ProcessId(0))]);
        // Dwell 2: round 2 keeps the same victim.
        let d2 = FaultModel::<u8>::begin_round(&mut model, view(Round(2), 3, &c, &g, &s, &d));
        assert!(d2.is_empty());
        assert_eq!(
            model.route(
                view(Round(2), 3, &c, &g, &s, &d),
                ProcessId(0),
                ProcessId(1),
                &0u8
            ),
            Routing::SendOmit
        );
        // Round 3: release p0, corrupt p2.
        let d3 = FaultModel::<u8>::begin_round(&mut model, view(Round(3), 3, &c, &g, &s, &d));
        assert_eq!(
            d3,
            vec![
                FaultDirective::Release(ProcessId(0)),
                FaultDirective::Corrupt(ProcessId(2)),
            ]
        );
        assert_eq!(
            model.route(
                view(Round(3), 3, &c, &g, &s, &d),
                ProcessId(0),
                ProcessId(1),
                &0u8
            ),
            Routing::Deliver,
            "released victims behave correctly again"
        );
    }

    #[test]
    fn scheduler_caps_the_victim_and_shuffles_deterministically() {
        let run = |seed: u64| {
            let mut model = SchedulerOmission::new(ProcessId(0), 1, seed);
            let (c, g, s, d) = (BTreeSet::new(), BTreeSet::new(), [0u64; 4], [0u64; 4]);
            let _ = FaultModel::<u8>::begin_round(&mut model, view(Round(1), 4, &c, &g, &s, &d));
            let mut queue: Vec<Envelope> = (1..4)
                .map(|i| Envelope {
                    sender: ProcessId(i),
                    receiver: ProcessId(0),
                })
                .collect();
            FaultModel::<u8>::schedule(&mut model, view(Round(1), 4, &c, &g, &s, &d), &mut queue);
            let order: Vec<ProcessId> = queue.iter().map(Envelope::sender).collect();
            let fates: Vec<Routing<u8>> = queue
                .iter()
                .map(|e| {
                    model.route(
                        view(Round(1), 4, &c, &g, &s, &d),
                        e.sender(),
                        e.receiver(),
                        &0u8,
                    )
                })
                .collect();
            (order, fates)
        };
        let (order_a, fates_a) = run(9);
        let (order_b, fates_b) = run(9);
        assert_eq!(order_a, order_b, "same seed, same schedule");
        assert_eq!(fates_a, fates_b);
        // Exactly one message reaches the victim; the rest are omitted.
        assert_eq!(
            fates_a.iter().filter(|r| **r == Routing::Deliver).count(),
            1
        );
        assert_eq!(
            fates_a
                .iter()
                .filter(|r| **r == Routing::ReceiveOmit)
                .count(),
            2
        );
    }

    #[test]
    fn forging_replaces_only_corrupted_senders() {
        let mut model = ForgingFaults::new([ProcessId(1)], 99u8);
        assert_eq!(FaultModel::<u8>::mode(&model), FaultMode::Byzantine);
        let (c, g, s, d) = (BTreeSet::new(), BTreeSet::new(), [0u64; 3], [0u64; 3]);
        let v = view(Round(1), 3, &c, &g, &s, &d);
        assert_eq!(
            model.route(v, ProcessId(1), ProcessId(0), &7u8),
            Routing::Forge(99)
        );
        assert_eq!(
            model.route(v, ProcessId(0), ProcessId(1), &7u8),
            Routing::Deliver
        );
    }

    #[test]
    fn mobile_pool_deduplicates_preserving_order() {
        let model = MobileOmission::new([ProcessId(2), ProcessId(0), ProcessId(2)], 0);
        assert_eq!(model.pool(), &[ProcessId(2), ProcessId(0)]);
        assert_eq!(FaultModel::<u8>::budget(&model), FaultBudget::Adaptive(2));
    }
}
