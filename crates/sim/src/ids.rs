//! Process and round identifiers.

use std::fmt;

/// Identifier of a process in the static system `Π = {p_0, …, p_{n-1}}`.
///
/// The paper indexes processes from 1; we index from 0, so `ProcessId(i)`
/// corresponds to the paper's `p_{i+1}`.
///
/// ```
/// use ba_sim::ProcessId;
/// let ids: Vec<_> = ProcessId::all(3).collect();
/// assert_eq!(ids, vec![ProcessId(0), ProcessId(1), ProcessId(2)]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// The zero-based index of this process.
    pub fn index(self) -> usize {
        self.0
    }

    /// Iterates over all process identifiers of an `n`-process system.
    pub fn all(n: usize) -> impl DoubleEndedIterator<Item = ProcessId> + Clone {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// A synchronous round number. Rounds are 1-based, as in the paper.
///
/// ```
/// use ba_sim::Round;
/// assert_eq!(Round::FIRST.next(), Round(2));
/// assert_eq!(Round(3).index(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Round(pub u64);

impl Round {
    /// The first round of every execution.
    pub const FIRST: Round = Round(1);

    /// The round immediately after this one.
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// The round immediately before this one.
    ///
    /// # Panics
    ///
    /// Panics if called on [`Round::FIRST`] (there is no round 0).
    pub fn prev(self) -> Round {
        assert!(self.0 > 1, "round 1 has no predecessor");
        Round(self.0 - 1)
    }

    /// Zero-based index of this round, suitable for indexing fragment
    /// vectors (`fragments[round.index()]` is the fragment of `round`).
    pub fn index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Iterates over rounds `1..=last`.
    pub fn up_to(last: u64) -> impl DoubleEndedIterator<Item = Round> + Clone {
        (1..=last).map(Round)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {}", self.0)
    }
}

impl Default for Round {
    fn default() -> Self {
        Round::FIRST
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_ids_enumerate_in_order() {
        let ids: Vec<_> = ProcessId::all(4).collect();
        assert_eq!(
            ids,
            vec![ProcessId(0), ProcessId(1), ProcessId(2), ProcessId(3)]
        );
    }

    #[test]
    fn process_id_display() {
        assert_eq!(ProcessId(7).to_string(), "p7");
    }

    #[test]
    fn rounds_are_one_based() {
        assert_eq!(Round::FIRST, Round(1));
        assert_eq!(Round::FIRST.index(), 0);
        assert_eq!(Round(5).next(), Round(6));
        assert_eq!(Round(5).prev(), Round(4));
    }

    #[test]
    #[should_panic(expected = "no predecessor")]
    fn round_one_has_no_predecessor() {
        let _ = Round::FIRST.prev();
    }

    #[test]
    fn up_to_covers_inclusive_range() {
        let rounds: Vec<_> = Round::up_to(3).collect();
        assert_eq!(rounds, vec![Round(1), Round(2), Round(3)]);
    }

    #[test]
    fn up_to_zero_is_empty() {
        assert_eq!(Round::up_to(0).count(), 0);
    }
}
