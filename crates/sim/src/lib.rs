//! # ba-sim — the synchronous execution model, as a simulator
//!
//! This crate implements, executably, the computational model of
//! *All Byzantine Agreement Problems are Expensive* (Civit, Gilbert,
//! Guerraoui, Komatovic, Paramonov, Vidigueira; PODC 2024), §2 and
//! Appendix A.1:
//!
//! * a static system `Π = {p_0, …, p_{n-1}}` of deterministic state machines
//!   ([`Protocol`]) advancing in lock-step synchronous rounds;
//! * per-round **fragments** recording, for every process, the messages it
//!   (successfully) sent, send-omitted, received, and receive-omitted
//!   ([`RoundFragment`], paper §A.1.4);
//! * **behaviors** — the per-process timeline of fragments
//!   ([`ProcessRecord`], paper §A.1.5);
//! * **executions** — a fault set plus one behavior per process, subject to
//!   the five execution guarantees (*faulty processes*, *composition*,
//!   *send-validity*, *receive-validity*, *omission-validity*;
//!   [`Execution::validate`], paper §A.1.6);
//! * a trait-based, execution-observing adversary layer: a [`FaultModel`]
//!   receives a per-round [`ExecutionView`] (routed traffic, corruption
//!   set, fault budget) and decides corruption (**adaptive** and **mobile**,
//!   with `|ever-corrupted| ≤ t` accounting), per-message routing
//!   (deliver / omit / **forge**), and optionally the within-round delivery
//!   order (**message scheduling**). The unified [`Adversary`] builds on
//!   it: the **omission** adversary of paper §3 (driven by an
//!   [`OmissionPlan`], including the *isolation* plan of Definition 1), the
//!   **Byzantine** adversary of §2 ([`ByzantineBehavior`]), the crash
//!   adversary, **mixed** per-process assignments, and the adaptive family
//!   ([`AdaptiveWorstCase`], [`MobileOmission`], [`SchedulerOmission`],
//!   [`ForgingFaults`]).
//!
//! Executions are constructed through the [`Scenario`] builder, and grids of
//! scenarios are swept in parallel by the [`Campaign`] runner. The simulator
//! is trace-complete: everything the paper's proofs inspect
//! (indistinguishability, message complexity, decision rounds) is recorded
//! and checkable after the fact. The proof constructions themselves
//! (`swap_omission`, `merge`, the Ω(t²) falsifier) live in `ba-core` and
//! operate on the [`Execution`] values produced here.
//!
//! What a run *records* is pluggable ([`TraceSink`]): [`Scenario::run`]
//! materializes the full [`Execution`] via the [`FullTrace`] sink, while
//! [`run_stats`](ProtocolScenario::run_stats) and [`Campaign`] sweeps
//! default to the [`StatsSink`] fast path ([`TraceMode::Stats`]) — identical
//! [`ScenarioStats`] with zero payload clones and no fragment allocation.
//!
//! ## Example
//!
//! ```
//! use ba_sim::{Scenario, Adversary, Protocol, ProcessCtx, Inbox, Outbox,
//!              Round, ProcessId, Bit};
//!
//! /// A toy protocol: everyone broadcasts its proposal in round 1 and
//! /// decides 0 iff it hears 0 from everybody (including itself).
//! #[derive(Clone)]
//! struct Echo { proposal: Bit, decision: Option<Bit> }
//!
//! impl Protocol for Echo {
//!     type Input = Bit;
//!     type Output = Bit;
//!     type Msg = Bit;
//!     fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
//!         self.proposal = proposal;
//!         let mut out = Outbox::new();
//!         for peer in ctx.others() { out.send(peer, proposal); }
//!         out
//!     }
//!     fn round(&mut self, ctx: &ProcessCtx, round: Round, inbox: &Inbox<Bit>) -> Outbox<Bit> {
//!         if round == Round::FIRST {
//!             let all_zero = self.proposal == Bit::Zero
//!                 && inbox.len() == ctx.n - 1
//!                 && inbox.iter().all(|(_, b)| *b == Bit::Zero);
//!             self.decision = Some(if all_zero { Bit::Zero } else { Bit::One });
//!         }
//!         Outbox::new()
//!     }
//!     fn decision(&self) -> Option<Bit> { self.decision }
//! }
//!
//! let exec = Scenario::new(4, 1)
//!     .protocol(|_pid| Echo { proposal: Bit::Zero, decision: None })
//!     .uniform_input(Bit::Zero)
//!     .adversary(Adversary::none())
//!     .run()
//!     .unwrap();
//! exec.validate().unwrap();
//! assert!(exec.all_correct_decided(Bit::Zero));
//! assert_eq!(exec.message_complexity(), 12); // 4 processes × 3 peers
//! ```
//!
//! Sweeping a grid of scenarios in parallel:
//!
//! ```
//! # use ba_sim::{Scenario, Campaign, Protocol, ProcessCtx, Inbox, Outbox,
//! #              Round, ProcessId, Bit};
//! # #[derive(Clone)]
//! # struct Echo { proposal: Bit, decision: Option<Bit> }
//! # impl Protocol for Echo {
//! #     type Input = Bit; type Output = Bit; type Msg = Bit;
//! #     fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
//! #         self.proposal = proposal;
//! #         let mut out = Outbox::new();
//! #         for peer in ctx.others() { out.send(peer, proposal); }
//! #         out
//! #     }
//! #     fn round(&mut self, _: &ProcessCtx, round: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
//! #         if round == Round::FIRST { self.decision = Some(self.proposal); }
//! #         Outbox::new()
//! #     }
//! #     fn decision(&self) -> Option<Bit> { self.decision }
//! # }
//! let report = Campaign::grid([(4, 1), (6, 2), (8, 2)], &["none"], &["zeros"])
//!     .run_scenarios(|point| {
//!         Scenario::new(point.n, point.t)
//!             .protocol(|_| Echo { proposal: Bit::Zero, decision: None })
//!             .uniform_input(Bit::Zero)
//!     });
//! assert!(report.all_clean());
//! assert_eq!(report.max_message_complexity(), 8 * 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod byzantine;
mod campaign;
mod error;
mod execution;
mod executor;
mod fault;
mod ids;
mod mailbox;
mod par;
mod plan;
mod protocol;
mod rng;
mod scenario;
mod sink;
mod telemetry;
mod trace;
mod value;

pub use arena::{
    stable_hash, CompressedExecution, CompressedFragment, CompressedRecord, PayloadArena,
    PayloadId, StableHasher,
};
pub use byzantine::{
    ByzantineBehavior, FollowThenCrash, HonestMimic, ReplayByzantine, SilentByzantine,
};
pub use campaign::{Campaign, CampaignPoint, CampaignReport, ScenarioOutcome, ScenarioStats};
pub use error::SimError;
pub use execution::{
    DecisionOutcome, Execution, ExecutionInvariantError, FaultMode, ProcessRecord, RoundFragment,
};
pub use executor::ExecutorConfig;
pub use fault::{
    AdaptiveWorstCase, Envelope, ExecutionView, FaultBudget, FaultDirective, FaultModel,
    ForgingFaults, MobileOmission, PlannedFaults, Routing, SchedulerOmission,
};
pub use ids::{ProcessId, Round};
pub use mailbox::{Inbox, Outbox, OutboxDrain, OutboxIntoIter, ReceiverMask, ReceiverMaskIter};
pub use par::par_map;
pub use plan::{
    CrashPlan, DoubleIsolationPlan, Fate, FnPlan, IsolationPlan, NoFaults, OmissionPlan,
    RandomOmissionPlan, TableOmissionPlan,
};
pub use protocol::{ProcessCtx, Protocol};
pub use rng::SimRng;
pub use scenario::{
    Adversary, BoxedBehavior, BoxedFaultModel, BoxedPlan, ProtocolScenario, Scenario,
    ScenarioResult,
};
pub use sink::{FullTrace, RunSummary, StatsSink, TraceMode, TraceSink};
pub use telemetry::RecordingSink;
pub use trace::{
    first_inbox_divergence, payload_reuse, render_divergence, render_execution, round_stats,
    RoundStats,
};
pub use value::{Bit, Payload, Value};
