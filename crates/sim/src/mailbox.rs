//! Per-round message containers: the [`Outbox`] a process fills when sending
//! and the [`Inbox`] it drains when receiving.
//!
//! The computational model (paper §A.1) allows each process to send *at most
//! one* message to any specific process in a single round and forbids
//! self-sends. [`Outbox`] enforces the former structurally (it is keyed by
//! receiver) and the executor rejects the latter.
//!
//! Both containers are backed by **dense slabs**: a `Vec<Option<M>>` indexed
//! by the counterparty's [`ProcessId`]. This keeps the executor's hot path
//! free of per-message tree allocations while preserving the deterministic
//! ascending-id iteration order the proof machinery relies on (identical to
//! the old `BTreeMap` order).

use std::collections::BTreeMap;

use crate::ids::ProcessId;
use crate::value::Payload;

/// A dense slab of at-most-one message per counterparty, indexed by
/// [`ProcessId`]. Shared backing store of [`Outbox`] and [`Inbox`].
#[derive(Clone, Debug)]
struct Slab<M> {
    slots: Vec<Option<M>>,
    len: usize,
}

impl<M: Payload> Slab<M> {
    fn new() -> Self {
        Slab {
            slots: Vec::new(),
            len: 0,
        }
    }

    fn with_capacity(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        Slab { slots, len: 0 }
    }

    /// Inserts, returning the previous occupant of the slot.
    fn insert(&mut self, id: ProcessId, msg: M) -> Option<M> {
        let idx = id.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let prev = self.slots[idx].replace(msg);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    fn get(&self, id: ProcessId) -> Option<&M> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    fn remove(&mut self, id: ProcessId) -> Option<M> {
        let taken = self.slots.get_mut(id.index()).and_then(Option::take);
        if taken.is_some() {
            self.len -= 1;
        }
        taken
    }

    /// Iterates occupied slots in ascending-id order. An empty slab skips
    /// the slot scan entirely (quiescent tail rounds hit this constantly).
    fn iter(&self) -> impl Iterator<Item = (ProcessId, &M)> {
        let slots: &[Option<M>] = if self.len == 0 { &[] } else { &self.slots };
        slots
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|m| (ProcessId(i), m)))
    }

    /// Removes and yields every message in ascending-id order, leaving the
    /// slab empty (capacity intact) when run to completion. `len` is
    /// decremented per yielded item, so dropping the iterator early leaves
    /// the slab consistent (remaining messages still counted and iterable).
    fn drain(&mut self) -> impl Iterator<Item = (ProcessId, M)> + '_ {
        let Slab { slots, len } = self;
        slots.iter_mut().enumerate().filter_map(move |(i, m)| {
            m.take().map(|m| {
                *len -= 1;
                (ProcessId(i), m)
            })
        })
    }

    fn clear(&mut self) {
        if self.len == 0 {
            return;
        }
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    fn to_map(&self) -> BTreeMap<ProcessId, M> {
        self.iter().map(|(p, m)| (p, m.clone())).collect()
    }

    fn into_map(mut self) -> BTreeMap<ProcessId, M> {
        self.drain().collect()
    }

    fn semantic_eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<M: Payload> FromIterator<(ProcessId, M)> for Slab<M> {
    fn from_iter<I: IntoIterator<Item = (ProcessId, M)>>(iter: I) -> Self {
        let mut slab = Slab::new();
        for (id, msg) in iter {
            slab.insert(id, msg);
        }
        slab
    }
}

/// The set of messages a process emits for one round, keyed by receiver.
///
/// ```
/// use ba_sim::{Outbox, ProcessId};
/// let mut out = Outbox::new();
/// out.send(ProcessId(1), "hello");
/// out.send(ProcessId(2), "world");
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Outbox<M> {
    msgs: Slab<M>,
}

impl<M: Payload> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox { msgs: Slab::new() }
    }

    /// Creates an empty outbox pre-sized for an `n`-process system, so no
    /// slot growth happens while sending.
    pub fn with_capacity(n: usize) -> Self {
        Outbox {
            msgs: Slab::with_capacity(n),
        }
    }

    /// Queues `msg` for delivery to `to` in this round.
    ///
    /// # Panics
    ///
    /// Panics if a message for `to` was already queued: the model allows at
    /// most one message per (sender, receiver, round), so a duplicate send is
    /// a protocol bug.
    pub fn send(&mut self, to: ProcessId, msg: M) -> &mut Self {
        let prev = self.msgs.insert(to, msg);
        assert!(prev.is_none(), "duplicate message to {to} in one round");
        self
    }

    /// Queues `msg` for every process in `peers` (clone per receiver).
    pub fn send_to_all<I>(&mut self, peers: I, msg: M) -> &mut Self
    where
        I: IntoIterator<Item = ProcessId>,
    {
        for peer in peers {
            self.send(peer, msg.clone());
        }
        self
    }

    /// The number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len
    }

    /// `true` iff no message is queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.len == 0
    }

    /// Iterates over `(receiver, payload)` pairs in receiver order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &M)> {
        self.msgs.iter()
    }

    /// Removes and yields every queued message in receiver order, leaving
    /// the outbox empty (capacity intact). The executor's routing loop uses
    /// this to move payloads out without rebuilding a map.
    pub fn drain(&mut self) -> impl Iterator<Item = (ProcessId, M)> + '_ {
        self.msgs.drain()
    }

    /// Removes the message queued for `to`, if any. The executor's
    /// scheduling path uses this to route messages in an adversary-chosen
    /// order while the payloads stay in their dense slabs.
    pub(crate) fn take(&mut self, to: ProcessId) -> Option<M> {
        self.msgs.remove(to)
    }

    /// Consumes the outbox, yielding its receiver → payload map.
    pub fn into_inner(self) -> BTreeMap<ProcessId, M> {
        self.msgs.into_map()
    }

    /// Merges another outbox into this one using `combine` to resolve
    /// receivers addressed by both.
    ///
    /// Used by parallel-composition combinators that must fold the outboxes
    /// of several sub-protocol instances into one physical message per
    /// receiver.
    pub fn merge_with<F>(&mut self, mut other: Outbox<M>, mut combine: F)
    where
        F: FnMut(M, M) -> M,
    {
        for (to, msg) in other.msgs.drain() {
            match self.msgs.remove(to) {
                None => {
                    self.msgs.insert(to, msg);
                }
                Some(existing) => {
                    self.msgs.insert(to, combine(existing, msg));
                }
            }
        }
    }
}

impl<M: Payload> Default for Outbox<M> {
    fn default() -> Self {
        Outbox::new()
    }
}

impl<M: Payload> PartialEq for Outbox<M> {
    fn eq(&self, other: &Self) -> bool {
        self.msgs.semantic_eq(&other.msgs)
    }
}

impl<M: Payload> Eq for Outbox<M> {}

impl<M: Payload> FromIterator<(ProcessId, M)> for Outbox<M> {
    fn from_iter<I: IntoIterator<Item = (ProcessId, M)>>(iter: I) -> Self {
        let mut out = Outbox::new();
        for (to, msg) in iter {
            out.send(to, msg);
        }
        out
    }
}

/// Owning iterator over an [`Outbox`], in receiver order.
pub struct OutboxIntoIter<M> {
    inner: std::iter::Enumerate<std::vec::IntoIter<Option<M>>>,
}

impl<M> Iterator for OutboxIntoIter<M> {
    type Item = (ProcessId, M);

    fn next(&mut self) -> Option<Self::Item> {
        for (i, slot) in self.inner.by_ref() {
            if let Some(msg) = slot {
                return Some((ProcessId(i), msg));
            }
        }
        None
    }
}

impl<M: Payload> IntoIterator for Outbox<M> {
    type Item = (ProcessId, M);
    type IntoIter = OutboxIntoIter<M>;

    fn into_iter(self) -> Self::IntoIter {
        OutboxIntoIter {
            inner: self.msgs.slots.into_iter().enumerate(),
        }
    }
}

/// The set of messages a process receives in one round, keyed by sender.
///
/// Receive-omitted messages never appear here: an inbox holds exactly the
/// messages the process's state machine observes, which is what the paper's
/// indistinguishability relation compares.
#[derive(Clone, Debug)]
pub struct Inbox<M> {
    msgs: Slab<M>,
}

impl<M: Payload> Inbox<M> {
    /// Creates an empty inbox.
    pub fn new() -> Self {
        Inbox { msgs: Slab::new() }
    }

    /// Creates an empty inbox pre-sized for an `n`-process system. The
    /// executor allocates one per process per *run* and reuses it across
    /// rounds.
    pub fn with_capacity(n: usize) -> Self {
        Inbox {
            msgs: Slab::with_capacity(n),
        }
    }

    /// Builds an inbox from a sender → payload map.
    pub fn from_map(msgs: BTreeMap<ProcessId, M>) -> Self {
        Inbox {
            msgs: msgs.into_iter().collect(),
        }
    }

    /// Delivers `msg` from `sender` into this inbox, replacing any earlier
    /// delivery from the same sender (the executor routes at most one).
    pub fn deliver(&mut self, sender: ProcessId, msg: M) {
        self.msgs.insert(sender, msg);
    }

    /// The message received from `sender` in this round, if any.
    pub fn from_sender(&self, sender: ProcessId) -> Option<&M> {
        self.msgs.get(sender)
    }

    /// The number of received messages.
    pub fn len(&self) -> usize {
        self.msgs.len
    }

    /// `true` iff nothing was received.
    pub fn is_empty(&self) -> bool {
        self.msgs.len == 0
    }

    /// Iterates over `(sender, payload)` pairs in sender order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &M)> {
        self.msgs.iter()
    }

    /// Iterates over the senders heard from this round.
    pub fn senders(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.msgs.iter().map(|(p, _)| p)
    }

    /// Clones the contents into a sender → payload map.
    pub fn to_map(&self) -> BTreeMap<ProcessId, M> {
        self.msgs.to_map()
    }

    /// Removes and yields every received message in sender order, leaving
    /// the inbox empty (capacity intact). [`TraceSink`](crate::TraceSink)
    /// implementations use this to take ownership of a round's payloads
    /// without cloning.
    pub fn drain(&mut self) -> impl Iterator<Item = (ProcessId, M)> + '_ {
        self.msgs.drain()
    }

    /// Empties the inbox, dropping all payloads (capacity intact).
    pub fn clear(&mut self) {
        self.msgs.clear();
    }

    /// Consumes the inbox, yielding its sender → payload map.
    pub fn into_inner(self) -> BTreeMap<ProcessId, M> {
        self.msgs.into_map()
    }
}

impl<M: Payload> Default for Inbox<M> {
    fn default() -> Self {
        Inbox::new()
    }
}

impl<M: Payload> PartialEq for Inbox<M> {
    fn eq(&self, other: &Self) -> bool {
        self.msgs.semantic_eq(&other.msgs)
    }
}

impl<M: Payload> Eq for Inbox<M> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_records_messages_by_receiver() {
        let mut out = Outbox::new();
        out.send(ProcessId(2), 7u32).send(ProcessId(0), 9u32);
        let pairs: Vec<_> = out.iter().map(|(p, m)| (p, *m)).collect();
        assert_eq!(pairs, vec![(ProcessId(0), 9), (ProcessId(2), 7)]);
    }

    #[test]
    #[should_panic(expected = "duplicate message")]
    fn outbox_rejects_duplicate_receiver() {
        let mut out = Outbox::new();
        out.send(ProcessId(1), 1u32);
        out.send(ProcessId(1), 2u32);
    }

    #[test]
    fn send_to_all_clones_payload() {
        let mut out = Outbox::new();
        out.send_to_all(ProcessId::all(3), "x");
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn merge_with_combines_collisions() {
        let mut a: Outbox<u32> = [(ProcessId(0), 1), (ProcessId(1), 2)].into_iter().collect();
        let b: Outbox<u32> = [(ProcessId(1), 10), (ProcessId(2), 20)]
            .into_iter()
            .collect();
        a.merge_with(b, |x, y| x + y);
        let pairs: Vec<_> = a.iter().map(|(p, m)| (p, *m)).collect();
        assert_eq!(
            pairs,
            vec![(ProcessId(0), 1), (ProcessId(1), 12), (ProcessId(2), 20)]
        );
    }

    #[test]
    fn inbox_lookup_by_sender() {
        let inbox = Inbox::from_map([(ProcessId(3), "m")].into_iter().collect());
        assert_eq!(inbox.from_sender(ProcessId(3)), Some(&"m"));
        assert_eq!(inbox.from_sender(ProcessId(1)), None);
        assert_eq!(inbox.senders().collect::<Vec<_>>(), vec![ProcessId(3)]);
    }

    #[test]
    fn empty_boxes_report_empty() {
        assert!(Outbox::<u8>::new().is_empty());
        assert!(Inbox::<u8>::new().is_empty());
    }

    #[test]
    fn equality_ignores_slab_capacity() {
        // The same semantic content must compare equal regardless of how the
        // backing slab grew (trailing empty slots are invisible).
        let mut grown: Outbox<u8> = Outbox::with_capacity(64);
        grown.send(ProcessId(1), 5);
        let mut tight: Outbox<u8> = Outbox::new();
        tight.send(ProcessId(1), 5);
        assert_eq!(grown, tight);

        let mut big = Inbox::with_capacity(32);
        big.deliver(ProcessId(2), 9u8);
        let mut small = Inbox::new();
        small.deliver(ProcessId(2), 9u8);
        assert_eq!(big, small);
        big.clear();
        assert_ne!(big, small);
        assert_eq!(big, Inbox::new());
    }

    #[test]
    fn drain_empties_and_preserves_order() {
        let mut out: Outbox<u8> = [(ProcessId(3), 3), (ProcessId(0), 0), (ProcessId(5), 5)]
            .into_iter()
            .collect();
        let drained: Vec<_> = out.drain().collect();
        assert_eq!(
            drained,
            vec![(ProcessId(0), 0), (ProcessId(3), 3), (ProcessId(5), 5)]
        );
        assert!(out.is_empty());
        // The outbox is reusable after draining.
        out.send(ProcessId(1), 7);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn inbox_drain_and_reuse_round_trip() {
        let mut inbox = Inbox::with_capacity(4);
        inbox.deliver(ProcessId(2), "b");
        inbox.deliver(ProcessId(0), "a");
        assert_eq!(inbox.len(), 2);
        let drained: Vec<_> = inbox.drain().collect();
        assert_eq!(drained, vec![(ProcessId(0), "a"), (ProcessId(2), "b")]);
        assert!(inbox.is_empty());
        inbox.deliver(ProcessId(3), "c");
        assert_eq!(inbox.to_map().len(), 1);
        assert_eq!(inbox.into_inner().len(), 1);
    }

    #[test]
    fn partially_consumed_drain_leaves_the_slab_consistent() {
        // A custom TraceSink may drop a drain iterator early; the remaining
        // messages must stay counted, iterable, and clearable.
        let mut inbox: Inbox<u8> = Inbox::with_capacity(4);
        inbox.deliver(ProcessId(0), 10);
        inbox.deliver(ProcessId(2), 12);
        inbox.deliver(ProcessId(3), 13);
        let first = inbox.drain().next();
        assert_eq!(first, Some((ProcessId(0), 10)));
        assert_eq!(inbox.len(), 2);
        assert!(!inbox.is_empty());
        let remaining: Vec<_> = inbox.iter().map(|(p, m)| (p, *m)).collect();
        assert_eq!(remaining, vec![(ProcessId(2), 12), (ProcessId(3), 13)]);
        inbox.clear();
        assert!(inbox.is_empty());
        assert_eq!(inbox.iter().count(), 0);
    }

    #[test]
    fn into_iterator_moves_payloads_in_receiver_order() {
        let out: Outbox<u8> = [(ProcessId(4), 4), (ProcessId(1), 1)].into_iter().collect();
        let moved: Vec<_> = out.into_iter().collect();
        assert_eq!(moved, vec![(ProcessId(1), 1), (ProcessId(4), 4)]);
    }
}
