//! Per-round message containers: the [`Outbox`] a process fills when sending
//! and the [`Inbox`] it drains when receiving.
//!
//! The computational model (paper §A.1) allows each process to send *at most
//! one* message to any specific process in a single round and forbids
//! self-sends. [`Outbox`] enforces the former structurally (it is keyed by
//! receiver) and the executor rejects the latter.
//!
//! Both containers are backed by **dense slabs**: a `Vec<Option<M>>` indexed
//! by the counterparty's [`ProcessId`]. This keeps the executor's hot path
//! free of per-message tree allocations while preserving the deterministic
//! ascending-id iteration order the proof machinery relies on (identical to
//! the old `BTreeMap` order).
//!
//! Broadcast — the dominant traffic shape of every implemented protocol — is
//! a first-class primitive: [`Outbox::broadcast`] stores *one* payload plus a
//! dense [`ReceiverMask`] instead of `n - 1` clones, and the executor fans it
//! out by reference, cloning only at final delivery into an [`Inbox`] slot.
//! All observable behavior (iteration order, equality, drain semantics) is
//! identical to the equivalent per-receiver sends.

use std::collections::BTreeMap;

use crate::ids::ProcessId;
use crate::value::Payload;

/// Number of inline 64-bit words in a [`ReceiverMask`] — 256 receivers
/// without touching the heap, which covers every bench grid up to
/// `stats-sweep-huge-n`.
const MASK_INLINE_WORDS: usize = 4;

/// A dense set of receiver ids backed by a fixed inline bitset (256 bits)
/// with a heap spill for larger systems. Ascending-id iteration matches the
/// slab/`BTreeMap` order the proof machinery relies on.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReceiverMask {
    lo: [u64; MASK_INLINE_WORDS],
    hi: Vec<u64>,
    count: usize,
}

impl ReceiverMask {
    /// An empty mask. No heap allocation until a bit ≥ 256 is set.
    pub fn new() -> Self {
        ReceiverMask::default()
    }

    fn word(&self, w: usize) -> u64 {
        if w < MASK_INLINE_WORDS {
            self.lo[w]
        } else {
            self.hi.get(w - MASK_INLINE_WORDS).copied().unwrap_or(0)
        }
    }

    fn word_mut(&mut self, w: usize) -> &mut u64 {
        if w < MASK_INLINE_WORDS {
            &mut self.lo[w]
        } else {
            let i = w - MASK_INLINE_WORDS;
            if i >= self.hi.len() {
                self.hi.resize(i + 1, 0);
            }
            &mut self.hi[i]
        }
    }

    fn words(&self) -> usize {
        MASK_INLINE_WORDS + self.hi.len()
    }

    /// Inserts `id`, returning `true` iff it was not already present.
    pub fn insert(&mut self, id: ProcessId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let word = self.word_mut(w);
        let fresh = *word & (1 << b) == 0;
        *word |= 1 << b;
        self.count += fresh as usize;
        fresh
    }

    /// Removes `id`, returning `true` iff it was present.
    pub fn remove(&mut self, id: ProcessId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        if w >= self.words() {
            return false;
        }
        let word = self.word_mut(w);
        let present = *word & (1 << b) != 0;
        *word &= !(1 << b);
        self.count -= present as usize;
        present
    }

    /// `true` iff `id` is in the mask.
    pub fn contains(&self, id: ProcessId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.word(w) & (1 << b) != 0
    }

    /// Number of ids in the mask.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` iff no id is set.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The highest id in the mask, if any — the executor's O(1) receiver
    /// range check.
    pub fn max_id(&self) -> Option<ProcessId> {
        for w in (0..self.words()).rev() {
            let word = self.word(w);
            if word != 0 {
                return Some(ProcessId(w * 64 + 63 - word.leading_zeros() as usize));
            }
        }
        None
    }

    /// The position of `id` in ascending iteration order, if present —
    /// the count of set bits below it. Lets fan-out deciders patch a
    /// pre-filled decision vector instead of testing every receiver.
    pub fn rank(&self, id: ProcessId) -> Option<usize> {
        if !self.contains(id) {
            return None;
        }
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mut rank = 0usize;
        for prior in 0..w {
            rank += self.word(prior).count_ones() as usize;
        }
        rank += (self.word(w) & ((1u64 << b) - 1)).count_ones() as usize;
        Some(rank)
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> ReceiverMaskIter<'_> {
        ReceiverMaskIter {
            mask: self,
            word: 0,
            bits: self.word(0),
        }
    }
}

impl FromIterator<ProcessId> for ReceiverMask {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut mask = ReceiverMask::new();
        for id in iter {
            mask.insert(id);
        }
        mask
    }
}

/// Ascending iterator over the ids of a [`ReceiverMask`].
pub struct ReceiverMaskIter<'a> {
    mask: &'a ReceiverMask,
    word: usize,
    bits: u64,
}

impl Iterator for ReceiverMaskIter<'_> {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(ProcessId(self.word * 64 + b));
            }
            self.word += 1;
            if self.word >= self.mask.words() {
                return None;
            }
            self.bits = self.mask.word(self.word);
        }
    }
}

/// A dense slab of at-most-one message per counterparty, indexed by
/// [`ProcessId`]. Shared backing store of [`Outbox`] and [`Inbox`].
#[derive(Clone, Debug)]
struct Slab<M> {
    slots: Vec<Option<M>>,
    len: usize,
}

impl<M: Payload> Slab<M> {
    fn new() -> Self {
        Slab {
            slots: Vec::new(),
            len: 0,
        }
    }

    fn with_capacity(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        Slab { slots, len: 0 }
    }

    /// Inserts, returning the previous occupant of the slot.
    fn insert(&mut self, id: ProcessId, msg: M) -> Option<M> {
        let idx = id.index();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let prev = self.slots[idx].replace(msg);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    fn get(&self, id: ProcessId) -> Option<&M> {
        self.slots.get(id.index()).and_then(Option::as_ref)
    }

    fn remove(&mut self, id: ProcessId) -> Option<M> {
        let taken = self.slots.get_mut(id.index()).and_then(Option::take);
        if taken.is_some() {
            self.len -= 1;
        }
        taken
    }

    /// Iterates occupied slots in ascending-id order. An empty slab skips
    /// the slot scan entirely (quiescent tail rounds hit this constantly).
    fn iter(&self) -> impl Iterator<Item = (ProcessId, &M)> {
        let slots: &[Option<M>] = if self.len == 0 { &[] } else { &self.slots };
        slots
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|m| (ProcessId(i), m)))
    }

    /// Removes and yields every message in ascending-id order, leaving the
    /// slab empty (capacity intact) when run to completion. `len` is
    /// decremented per yielded item, so dropping the iterator early leaves
    /// the slab consistent (remaining messages still counted and iterable).
    fn drain(&mut self) -> impl Iterator<Item = (ProcessId, M)> + '_ {
        let Slab { slots, len } = self;
        slots.iter_mut().enumerate().filter_map(move |(i, m)| {
            m.take().map(|m| {
                *len -= 1;
                (ProcessId(i), m)
            })
        })
    }

    fn clear(&mut self) {
        if self.len == 0 {
            return;
        }
        for slot in &mut self.slots {
            *slot = None;
        }
        self.len = 0;
    }

    fn to_map(&self) -> BTreeMap<ProcessId, M> {
        self.iter().map(|(p, m)| (p, m.clone())).collect()
    }

    fn into_map(mut self) -> BTreeMap<ProcessId, M> {
        self.drain().collect()
    }

    fn semantic_eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<M: Payload> FromIterator<(ProcessId, M)> for Slab<M> {
    fn from_iter<I: IntoIterator<Item = (ProcessId, M)>>(iter: I) -> Self {
        let mut slab = Slab::new();
        for (id, msg) in iter {
            slab.insert(id, msg);
        }
        slab
    }
}

/// One broadcast: a single payload plus the dense set of its receivers.
#[derive(Clone, Debug)]
struct Broadcast<M> {
    msg: M,
    mask: ReceiverMask,
}

/// The set of messages a process emits for one round, keyed by receiver.
///
/// A broadcast ([`Outbox::broadcast`]) is stored as *one* payload plus a
/// receiver bitmask; per-receiver sends live in a dense slab. The two parts
/// are kept disjoint and every observable view (iteration, drain, equality,
/// length) presents their merged contents in ascending receiver order, so a
/// broadcast outbox is indistinguishable from the equivalent per-receiver
/// one.
///
/// ```
/// use ba_sim::{Outbox, ProcessId};
/// let mut out = Outbox::new();
/// out.send(ProcessId(1), "hello");
/// out.send(ProcessId(2), "world");
/// assert_eq!(out.len(), 2);
///
/// let mut bcast = Outbox::new();
/// bcast.broadcast([ProcessId(1), ProcessId(2)], "hello");
/// assert_eq!(bcast.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Outbox<M> {
    msgs: Slab<M>,
    bcast: Option<Broadcast<M>>,
}

impl<M: Payload> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox {
            msgs: Slab::new(),
            bcast: None,
        }
    }

    /// Creates an empty outbox pre-sized for an `n`-process system, so no
    /// slot growth happens while sending.
    pub fn with_capacity(n: usize) -> Self {
        Outbox {
            msgs: Slab::with_capacity(n),
            bcast: None,
        }
    }

    /// Queues `msg` for delivery to `to` in this round.
    ///
    /// # Panics
    ///
    /// Panics if a message for `to` was already queued (by [`send`] or by a
    /// [`broadcast`] covering `to`): the model allows at most one message per
    /// (sender, receiver, round), so a duplicate send is a protocol bug.
    ///
    /// [`send`]: Outbox::send
    /// [`broadcast`]: Outbox::broadcast
    pub fn send(&mut self, to: ProcessId, msg: M) -> &mut Self {
        let covered = self.bcast.as_ref().is_some_and(|b| b.mask.contains(to));
        assert!(!covered, "duplicate message to {to} in one round");
        let prev = self.msgs.insert(to, msg);
        assert!(prev.is_none(), "duplicate message to {to} in one round");
        self
    }

    /// Queues **one** copy of `msg` for every process in `peers`, stored as a
    /// single payload plus a receiver bitmask — the zero-clone broadcast
    /// primitive. The executor fans it out by reference; payload clones
    /// happen only at final inbox delivery.
    ///
    /// A second broadcast in the same round falls back to per-receiver
    /// clones, preserving the one-message-per-receiver rule.
    ///
    /// # Panics
    ///
    /// Panics if any peer already has a queued message.
    pub fn broadcast<I>(&mut self, peers: I, msg: M) -> &mut Self
    where
        I: IntoIterator<Item = ProcessId>,
    {
        if self.bcast.is_some() {
            // Rare: a protocol broadcasting twice in one round (disjoint
            // groups). Keep the legacy per-receiver representation.
            for peer in peers {
                self.send(peer, msg.clone());
            }
            return self;
        }
        let mut mask = ReceiverMask::new();
        if self.msgs.len == 0 {
            // Common case (pure broadcast round): no queued unicasts to
            // collide with, so only the mask needs checking.
            for peer in peers {
                assert!(
                    mask.insert(peer),
                    "duplicate message to {peer} in one round"
                );
            }
        } else {
            for peer in peers {
                assert!(
                    self.msgs.get(peer).is_none() && mask.insert(peer),
                    "duplicate message to {peer} in one round"
                );
            }
        }
        if !mask.is_empty() {
            self.bcast = Some(Broadcast { msg, mask });
        }
        self
    }

    /// Queues `msg` for every process in `peers`. Alias of
    /// [`broadcast`](Outbox::broadcast) kept for source compatibility.
    pub fn send_to_all<I>(&mut self, peers: I, msg: M) -> &mut Self
    where
        I: IntoIterator<Item = ProcessId>,
    {
        self.broadcast(peers, msg)
    }

    /// The number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len + self.bcast.as_ref().map_or(0, |b| b.mask.len())
    }

    /// `true` iff no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One past the highest receiver index that could be occupied.
    fn upper(&self) -> usize {
        let slab = self.msgs.slots.len();
        let mask = self
            .bcast
            .as_ref()
            .and_then(|b| b.mask.max_id())
            .map_or(0, |p| p.index() + 1);
        slab.max(mask)
    }

    /// Iterates over `(receiver, payload)` pairs in receiver order, merging
    /// the broadcast (if any) with per-receiver sends.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &M)> {
        let bcast = self.bcast.as_ref();
        (0..self.upper()).filter_map(move |i| {
            if let Some(m) = self.msgs.slots.get(i).and_then(Option::as_ref) {
                return Some((ProcessId(i), m));
            }
            bcast
                .filter(|b| b.mask.contains(ProcessId(i)))
                .map(|b| (ProcessId(i), &b.msg))
        })
    }

    /// Removes and yields every queued message in receiver order, leaving
    /// the outbox empty (capacity intact). Broadcast payloads are cloned per
    /// receiver (the last one is moved) — the executor's routing loop avoids
    /// this entirely via [`take_broadcast`](Outbox::take_broadcast).
    pub fn drain(&mut self) -> OutboxDrain<'_, M> {
        let upper = self.upper();
        OutboxDrain {
            out: self,
            idx: 0,
            upper,
        }
    }

    /// Removes the message queued for `to`, if any. The executor's
    /// scheduling path uses this to route messages in an adversary-chosen
    /// order while the payloads stay in their dense slabs.
    pub(crate) fn take(&mut self, to: ProcessId) -> Option<M> {
        if let Some(m) = self.msgs.remove(to) {
            return Some(m);
        }
        if self.bcast.as_mut().is_some_and(|b| b.mask.remove(to)) {
            let empty = self.bcast.as_ref().is_some_and(|b| b.mask.is_empty());
            return Some(if empty {
                self.bcast.take().expect("checked above").msg
            } else {
                self.bcast.as_ref().expect("checked above").msg.clone()
            });
        }
        None
    }

    /// Detaches the broadcast part, if any, leaving only per-receiver sends
    /// behind. The executor's fast path fans the returned payload out by
    /// reference instead of draining clones.
    pub(crate) fn take_broadcast(&mut self) -> Option<(M, ReceiverMask)> {
        self.bcast.take().map(|b| (b.msg, b.mask))
    }

    /// The broadcast payload and receiver mask, if a broadcast is queued.
    pub fn broadcast_part(&self) -> Option<(&M, &ReceiverMask)> {
        self.bcast.as_ref().map(|b| (&b.msg, &b.mask))
    }

    /// Number of messages queued via per-receiver [`send`](Outbox::send)
    /// (excluding the broadcast part).
    pub(crate) fn unicast_len(&self) -> usize {
        self.msgs.len
    }

    /// Iterates the per-receiver sends only (excluding the broadcast part),
    /// in receiver order.
    pub(crate) fn unicast_iter(&self) -> impl Iterator<Item = (ProcessId, &M)> {
        self.msgs.iter()
    }

    /// Rewrites the broadcast (if any) as per-receiver clones — the
    /// representation the pre-broadcast engine used. Observable behavior is
    /// unchanged; the equivalence suite uses this to pin the broadcast path
    /// against the cloning path bit-for-bit.
    pub fn materialize_broadcast(&mut self) {
        if let Some(b) = self.bcast.take() {
            for to in b.mask.iter() {
                let prev = self.msgs.insert(to, b.msg.clone());
                debug_assert!(prev.is_none(), "mask and slab must stay disjoint");
            }
        }
    }

    /// Consumes the outbox, yielding its receiver → payload map.
    pub fn into_inner(mut self) -> BTreeMap<ProcessId, M> {
        self.drain().collect()
    }

    /// Merges another outbox into this one using `combine` to resolve
    /// receivers addressed by both.
    ///
    /// Used by parallel-composition combinators that must fold the outboxes
    /// of several sub-protocol instances into one physical message per
    /// receiver.
    pub fn merge_with<F>(&mut self, mut other: Outbox<M>, mut combine: F)
    where
        F: FnMut(M, M) -> M,
    {
        for (to, msg) in other.drain() {
            match self.take(to) {
                None => {
                    self.msgs.insert(to, msg);
                }
                Some(existing) => {
                    self.msgs.insert(to, combine(existing, msg));
                }
            }
        }
    }
}

impl<M: Payload> Default for Outbox<M> {
    fn default() -> Self {
        Outbox::new()
    }
}

impl<M: Payload> PartialEq for Outbox<M> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<M: Payload> Eq for Outbox<M> {}

impl<M: Payload> FromIterator<(ProcessId, M)> for Outbox<M> {
    fn from_iter<I: IntoIterator<Item = (ProcessId, M)>>(iter: I) -> Self {
        let mut out = Outbox::new();
        for (to, msg) in iter {
            out.send(to, msg);
        }
        out
    }
}

/// Draining iterator over an [`Outbox`], in receiver order (see
/// [`Outbox::drain`]).
pub struct OutboxDrain<'a, M: Payload> {
    out: &'a mut Outbox<M>,
    idx: usize,
    upper: usize,
}

impl<M: Payload> Iterator for OutboxDrain<'_, M> {
    type Item = (ProcessId, M);

    fn next(&mut self) -> Option<Self::Item> {
        while self.idx < self.upper {
            let to = ProcessId(self.idx);
            self.idx += 1;
            if let Some(m) = self.out.msgs.remove(to) {
                return Some((to, m));
            }
            if self.out.bcast.as_mut().is_some_and(|b| b.mask.remove(to)) {
                let empty = self.out.bcast.as_ref().is_some_and(|b| b.mask.is_empty());
                let msg = if empty {
                    self.out.bcast.take().expect("checked above").msg
                } else {
                    self.out.bcast.as_ref().expect("checked above").msg.clone()
                };
                return Some((to, msg));
            }
        }
        None
    }
}

/// Owning iterator over an [`Outbox`], in receiver order.
pub struct OutboxIntoIter<M> {
    inner: std::vec::IntoIter<(ProcessId, M)>,
}

impl<M> Iterator for OutboxIntoIter<M> {
    type Item = (ProcessId, M);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

impl<M: Payload> IntoIterator for Outbox<M> {
    type Item = (ProcessId, M);
    type IntoIter = OutboxIntoIter<M>;

    fn into_iter(mut self) -> Self::IntoIter {
        OutboxIntoIter {
            inner: self.drain().collect::<Vec<_>>().into_iter(),
        }
    }
}

/// The set of messages a process receives in one round, keyed by sender.
///
/// Receive-omitted messages never appear here: an inbox holds exactly the
/// messages the process's state machine observes, which is what the paper's
/// indistinguishability relation compares.
#[derive(Clone, Debug)]
pub struct Inbox<M> {
    msgs: Slab<M>,
}

impl<M: Payload> Inbox<M> {
    /// Creates an empty inbox.
    pub fn new() -> Self {
        Inbox { msgs: Slab::new() }
    }

    /// Creates an empty inbox pre-sized for an `n`-process system. The
    /// executor allocates one per process per *run* and reuses it across
    /// rounds.
    pub fn with_capacity(n: usize) -> Self {
        Inbox {
            msgs: Slab::with_capacity(n),
        }
    }

    /// Builds an inbox from a sender → payload map.
    pub fn from_map(msgs: BTreeMap<ProcessId, M>) -> Self {
        Inbox {
            msgs: msgs.into_iter().collect(),
        }
    }

    /// Delivers `msg` from `sender` into this inbox, replacing any earlier
    /// delivery from the same sender (the executor routes at most one).
    pub fn deliver(&mut self, sender: ProcessId, msg: M) {
        self.msgs.insert(sender, msg);
    }

    /// The message received from `sender` in this round, if any.
    pub fn from_sender(&self, sender: ProcessId) -> Option<&M> {
        self.msgs.get(sender)
    }

    /// The number of received messages.
    pub fn len(&self) -> usize {
        self.msgs.len
    }

    /// `true` iff nothing was received.
    pub fn is_empty(&self) -> bool {
        self.msgs.len == 0
    }

    /// Iterates over `(sender, payload)` pairs in sender order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &M)> {
        self.msgs.iter()
    }

    /// Iterates over the senders heard from this round.
    pub fn senders(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.msgs.iter().map(|(p, _)| p)
    }

    /// Clones the contents into a sender → payload map.
    pub fn to_map(&self) -> BTreeMap<ProcessId, M> {
        self.msgs.to_map()
    }

    /// Removes and yields every received message in sender order, leaving
    /// the inbox empty (capacity intact). [`TraceSink`](crate::TraceSink)
    /// implementations use this to take ownership of a round's payloads
    /// without cloning.
    pub fn drain(&mut self) -> impl Iterator<Item = (ProcessId, M)> + '_ {
        self.msgs.drain()
    }

    /// Empties the inbox, dropping all payloads (capacity intact).
    pub fn clear(&mut self) {
        self.msgs.clear();
    }

    /// Consumes the inbox, yielding its sender → payload map.
    pub fn into_inner(self) -> BTreeMap<ProcessId, M> {
        self.msgs.into_map()
    }
}

impl<M: Payload> Default for Inbox<M> {
    fn default() -> Self {
        Inbox::new()
    }
}

impl<M: Payload> PartialEq for Inbox<M> {
    fn eq(&self, other: &Self) -> bool {
        self.msgs.semantic_eq(&other.msgs)
    }
}

impl<M: Payload> Eq for Inbox<M> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_records_messages_by_receiver() {
        let mut out = Outbox::new();
        out.send(ProcessId(2), 7u32).send(ProcessId(0), 9u32);
        let pairs: Vec<_> = out.iter().map(|(p, m)| (p, *m)).collect();
        assert_eq!(pairs, vec![(ProcessId(0), 9), (ProcessId(2), 7)]);
    }

    #[test]
    #[should_panic(expected = "duplicate message")]
    fn outbox_rejects_duplicate_receiver() {
        let mut out = Outbox::new();
        out.send(ProcessId(1), 1u32);
        out.send(ProcessId(1), 2u32);
    }

    #[test]
    fn send_to_all_clones_payload() {
        let mut out = Outbox::new();
        out.send_to_all(ProcessId::all(3), "x");
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn broadcast_stores_one_payload_with_mask() {
        let mut out = Outbox::new();
        out.broadcast([ProcessId(0), ProcessId(2), ProcessId(5)], "b");
        assert_eq!(out.len(), 3);
        let (msg, mask) = out.broadcast_part().expect("broadcast queued");
        assert_eq!(*msg, "b");
        assert_eq!(mask.len(), 3);
        assert_eq!(
            out.iter().map(|(p, m)| (p, *m)).collect::<Vec<_>>(),
            vec![
                (ProcessId(0), "b"),
                (ProcessId(2), "b"),
                (ProcessId(5), "b")
            ]
        );
    }

    #[test]
    fn broadcast_equals_per_receiver_sends() {
        let mut bcast: Outbox<u8> = Outbox::new();
        bcast.broadcast([ProcessId(1), ProcessId(3)], 9);
        let mut unicast: Outbox<u8> = Outbox::new();
        unicast.send(ProcessId(1), 9).send(ProcessId(3), 9);
        assert_eq!(bcast, unicast);
        assert_eq!(unicast, bcast);

        // Materializing the broadcast changes nothing observable.
        let mut materialized = bcast.clone();
        materialized.materialize_broadcast();
        assert!(materialized.broadcast_part().is_none());
        assert_eq!(materialized, bcast);
    }

    #[test]
    fn broadcast_and_unicast_merge_in_ascending_order() {
        let mut out: Outbox<&str> = Outbox::new();
        out.send(ProcessId(2), "uni");
        out.broadcast([ProcessId(0), ProcessId(4)], "bc");
        assert_eq!(out.len(), 3);
        let view: Vec<_> = out.iter().map(|(p, m)| (p, *m)).collect();
        assert_eq!(
            view,
            vec![
                (ProcessId(0), "bc"),
                (ProcessId(2), "uni"),
                (ProcessId(4), "bc")
            ]
        );
        let drained: Vec<_> = out.drain().collect();
        assert_eq!(
            drained,
            vec![
                (ProcessId(0), "bc"),
                (ProcessId(2), "uni"),
                (ProcessId(4), "bc")
            ]
        );
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate message")]
    fn broadcast_rejects_receiver_with_queued_send() {
        let mut out = Outbox::new();
        out.send(ProcessId(1), 1u32);
        out.broadcast([ProcessId(0), ProcessId(1)], 2u32);
    }

    #[test]
    #[should_panic(expected = "duplicate message")]
    fn send_rejects_receiver_covered_by_broadcast() {
        let mut out = Outbox::new();
        out.broadcast([ProcessId(0), ProcessId(1)], 2u32);
        out.send(ProcessId(1), 1u32);
    }

    #[test]
    fn second_broadcast_falls_back_to_clones() {
        let mut out = Outbox::new();
        out.broadcast([ProcessId(0)], "a");
        out.broadcast([ProcessId(1), ProcessId(2)], "b");
        assert_eq!(out.len(), 3);
        let view: Vec<_> = out.iter().map(|(p, m)| (p, *m)).collect();
        assert_eq!(
            view,
            vec![
                (ProcessId(0), "a"),
                (ProcessId(1), "b"),
                (ProcessId(2), "b")
            ]
        );
    }

    #[test]
    fn take_clears_mask_bits_and_moves_last_payload() {
        let mut out = Outbox::new();
        out.broadcast([ProcessId(0), ProcessId(2)], "b");
        assert_eq!(out.take(ProcessId(1)), None);
        assert_eq!(out.take(ProcessId(0)), Some("b"));
        assert_eq!(out.len(), 1);
        assert_eq!(out.take(ProcessId(2)), Some("b"));
        assert!(out.is_empty());
        assert!(out.broadcast_part().is_none());
    }

    #[test]
    fn receiver_mask_tracks_membership_and_order() {
        let mut mask = ReceiverMask::new();
        assert!(mask.is_empty());
        assert!(mask.insert(ProcessId(300)));
        assert!(mask.insert(ProcessId(3)));
        assert!(!mask.insert(ProcessId(3)));
        assert_eq!(mask.len(), 2);
        assert!(mask.contains(ProcessId(300)));
        assert!(!mask.contains(ProcessId(299)));
        assert_eq!(mask.max_id(), Some(ProcessId(300)));
        assert_eq!(
            mask.iter().collect::<Vec<_>>(),
            vec![ProcessId(3), ProcessId(300)]
        );
        assert!(mask.remove(ProcessId(300)));
        assert!(!mask.remove(ProcessId(300)));
        assert_eq!(mask.max_id(), Some(ProcessId(3)));
        assert_eq!(mask.len(), 1);
    }

    #[test]
    fn huge_n_broadcast_round_trips_through_spill_words() {
        let n = 700;
        let mut out: Outbox<u16> = Outbox::new();
        out.broadcast((0..n).map(ProcessId), 1);
        assert_eq!(out.len(), n);
        let drained: Vec<_> = out.drain().collect();
        assert_eq!(drained.len(), n);
        assert!(drained
            .iter()
            .enumerate()
            .all(|(i, (p, m))| p.index() == i && *m == 1));
    }

    #[test]
    fn merge_with_combines_collisions() {
        let mut a: Outbox<u32> = [(ProcessId(0), 1), (ProcessId(1), 2)].into_iter().collect();
        let b: Outbox<u32> = [(ProcessId(1), 10), (ProcessId(2), 20)]
            .into_iter()
            .collect();
        a.merge_with(b, |x, y| x + y);
        let pairs: Vec<_> = a.iter().map(|(p, m)| (p, *m)).collect();
        assert_eq!(
            pairs,
            vec![(ProcessId(0), 1), (ProcessId(1), 12), (ProcessId(2), 20)]
        );
    }

    #[test]
    fn inbox_lookup_by_sender() {
        let inbox = Inbox::from_map([(ProcessId(3), "m")].into_iter().collect());
        assert_eq!(inbox.from_sender(ProcessId(3)), Some(&"m"));
        assert_eq!(inbox.from_sender(ProcessId(1)), None);
        assert_eq!(inbox.senders().collect::<Vec<_>>(), vec![ProcessId(3)]);
    }

    #[test]
    fn empty_boxes_report_empty() {
        assert!(Outbox::<u8>::new().is_empty());
        assert!(Inbox::<u8>::new().is_empty());
    }

    #[test]
    fn equality_ignores_slab_capacity() {
        // The same semantic content must compare equal regardless of how the
        // backing slab grew (trailing empty slots are invisible).
        let mut grown: Outbox<u8> = Outbox::with_capacity(64);
        grown.send(ProcessId(1), 5);
        let mut tight: Outbox<u8> = Outbox::new();
        tight.send(ProcessId(1), 5);
        assert_eq!(grown, tight);

        let mut big = Inbox::with_capacity(32);
        big.deliver(ProcessId(2), 9u8);
        let mut small = Inbox::new();
        small.deliver(ProcessId(2), 9u8);
        assert_eq!(big, small);
        big.clear();
        assert_ne!(big, small);
        assert_eq!(big, Inbox::new());
    }

    #[test]
    fn drain_empties_and_preserves_order() {
        let mut out: Outbox<u8> = [(ProcessId(3), 3), (ProcessId(0), 0), (ProcessId(5), 5)]
            .into_iter()
            .collect();
        let drained: Vec<_> = out.drain().collect();
        assert_eq!(
            drained,
            vec![(ProcessId(0), 0), (ProcessId(3), 3), (ProcessId(5), 5)]
        );
        assert!(out.is_empty());
        // The outbox is reusable after draining.
        out.send(ProcessId(1), 7);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn inbox_drain_and_reuse_round_trip() {
        let mut inbox = Inbox::with_capacity(4);
        inbox.deliver(ProcessId(2), "b");
        inbox.deliver(ProcessId(0), "a");
        assert_eq!(inbox.len(), 2);
        let drained: Vec<_> = inbox.drain().collect();
        assert_eq!(drained, vec![(ProcessId(0), "a"), (ProcessId(2), "b")]);
        assert!(inbox.is_empty());
        inbox.deliver(ProcessId(3), "c");
        assert_eq!(inbox.to_map().len(), 1);
        assert_eq!(inbox.into_inner().len(), 1);
    }

    #[test]
    fn partially_consumed_drain_leaves_the_slab_consistent() {
        // A custom TraceSink may drop a drain iterator early; the remaining
        // messages must stay counted, iterable, and clearable.
        let mut inbox: Inbox<u8> = Inbox::with_capacity(4);
        inbox.deliver(ProcessId(0), 10);
        inbox.deliver(ProcessId(2), 12);
        inbox.deliver(ProcessId(3), 13);
        let first = inbox.drain().next();
        assert_eq!(first, Some((ProcessId(0), 10)));
        assert_eq!(inbox.len(), 2);
        assert!(!inbox.is_empty());
        let remaining: Vec<_> = inbox.iter().map(|(p, m)| (p, *m)).collect();
        assert_eq!(remaining, vec![(ProcessId(2), 12), (ProcessId(3), 13)]);
        inbox.clear();
        assert!(inbox.is_empty());
        assert_eq!(inbox.iter().count(), 0);
    }

    #[test]
    fn into_iterator_moves_payloads_in_receiver_order() {
        let out: Outbox<u8> = [(ProcessId(4), 4), (ProcessId(1), 1)].into_iter().collect();
        let moved: Vec<_> = out.into_iter().collect();
        assert_eq!(moved, vec![(ProcessId(1), 1), (ProcessId(4), 4)]);
    }
}
