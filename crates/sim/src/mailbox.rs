//! Per-round message containers: the [`Outbox`] a process fills when sending
//! and the [`Inbox`] it drains when receiving.
//!
//! The computational model (paper §A.1) allows each process to send *at most
//! one* message to any specific process in a single round and forbids
//! self-sends. [`Outbox`] enforces the former structurally (it is keyed by
//! receiver) and the executor rejects the latter.

use std::collections::BTreeMap;

use crate::ids::ProcessId;
use crate::value::Payload;

/// The set of messages a process emits for one round, keyed by receiver.
///
/// ```
/// use ba_sim::{Outbox, ProcessId};
/// let mut out = Outbox::new();
/// out.send(ProcessId(1), "hello");
/// out.send(ProcessId(2), "world");
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Outbox<M> {
    msgs: BTreeMap<ProcessId, M>,
}

impl<M: Payload> Outbox<M> {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox {
            msgs: BTreeMap::new(),
        }
    }

    /// Queues `msg` for delivery to `to` in this round.
    ///
    /// # Panics
    ///
    /// Panics if a message for `to` was already queued: the model allows at
    /// most one message per (sender, receiver, round), so a duplicate send is
    /// a protocol bug.
    pub fn send(&mut self, to: ProcessId, msg: M) -> &mut Self {
        let prev = self.msgs.insert(to, msg);
        assert!(prev.is_none(), "duplicate message to {to} in one round");
        self
    }

    /// Queues `msg` for every process in `peers` (clone per receiver).
    pub fn send_to_all<I>(&mut self, peers: I, msg: M) -> &mut Self
    where
        I: IntoIterator<Item = ProcessId>,
    {
        for peer in peers {
            self.send(peer, msg.clone());
        }
        self
    }

    /// The number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// `true` iff no message is queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Iterates over `(receiver, payload)` pairs in receiver order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &M)> {
        self.msgs.iter().map(|(k, v)| (*k, v))
    }

    /// Consumes the outbox, yielding its receiver → payload map.
    pub fn into_inner(self) -> BTreeMap<ProcessId, M> {
        self.msgs
    }

    /// Merges another outbox into this one using `combine` to resolve
    /// receivers addressed by both.
    ///
    /// Used by parallel-composition combinators that must fold the outboxes
    /// of several sub-protocol instances into one physical message per
    /// receiver.
    pub fn merge_with<F>(&mut self, other: Outbox<M>, mut combine: F)
    where
        F: FnMut(M, M) -> M,
    {
        for (to, msg) in other.msgs {
            match self.msgs.remove(&to) {
                None => {
                    self.msgs.insert(to, msg);
                }
                Some(existing) => {
                    self.msgs.insert(to, combine(existing, msg));
                }
            }
        }
    }
}

impl<M: Payload> Default for Outbox<M> {
    fn default() -> Self {
        Outbox::new()
    }
}

impl<M: Payload> FromIterator<(ProcessId, M)> for Outbox<M> {
    fn from_iter<I: IntoIterator<Item = (ProcessId, M)>>(iter: I) -> Self {
        let mut out = Outbox::new();
        for (to, msg) in iter {
            out.send(to, msg);
        }
        out
    }
}

/// The set of messages a process receives in one round, keyed by sender.
///
/// Receive-omitted messages never appear here: an inbox holds exactly the
/// messages the process's state machine observes, which is what the paper's
/// indistinguishability relation compares.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Inbox<M> {
    msgs: BTreeMap<ProcessId, M>,
}

impl<M: Payload> Inbox<M> {
    /// Creates an empty inbox.
    pub fn new() -> Self {
        Inbox {
            msgs: BTreeMap::new(),
        }
    }

    /// Builds an inbox from a sender → payload map.
    pub fn from_map(msgs: BTreeMap<ProcessId, M>) -> Self {
        Inbox { msgs }
    }

    /// The message received from `sender` in this round, if any.
    pub fn from_sender(&self, sender: ProcessId) -> Option<&M> {
        self.msgs.get(&sender)
    }

    /// The number of received messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// `true` iff nothing was received.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Iterates over `(sender, payload)` pairs in sender order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &M)> {
        self.msgs.iter().map(|(k, v)| (*k, v))
    }

    /// Iterates over the senders heard from this round.
    pub fn senders(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.msgs.keys().copied()
    }

    /// A reference to the underlying sender → payload map.
    pub fn as_map(&self) -> &BTreeMap<ProcessId, M> {
        &self.msgs
    }

    /// Consumes the inbox, yielding its sender → payload map.
    pub fn into_inner(self) -> BTreeMap<ProcessId, M> {
        self.msgs
    }
}

impl<M: Payload> Default for Inbox<M> {
    fn default() -> Self {
        Inbox::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_records_messages_by_receiver() {
        let mut out = Outbox::new();
        out.send(ProcessId(2), 7u32).send(ProcessId(0), 9u32);
        let pairs: Vec<_> = out.iter().map(|(p, m)| (p, *m)).collect();
        assert_eq!(pairs, vec![(ProcessId(0), 9), (ProcessId(2), 7)]);
    }

    #[test]
    #[should_panic(expected = "duplicate message")]
    fn outbox_rejects_duplicate_receiver() {
        let mut out = Outbox::new();
        out.send(ProcessId(1), 1u32);
        out.send(ProcessId(1), 2u32);
    }

    #[test]
    fn send_to_all_clones_payload() {
        let mut out = Outbox::new();
        out.send_to_all(ProcessId::all(3), "x");
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn merge_with_combines_collisions() {
        let mut a: Outbox<u32> = [(ProcessId(0), 1), (ProcessId(1), 2)].into_iter().collect();
        let b: Outbox<u32> = [(ProcessId(1), 10), (ProcessId(2), 20)]
            .into_iter()
            .collect();
        a.merge_with(b, |x, y| x + y);
        let pairs: Vec<_> = a.iter().map(|(p, m)| (p, *m)).collect();
        assert_eq!(
            pairs,
            vec![(ProcessId(0), 1), (ProcessId(1), 12), (ProcessId(2), 20)]
        );
    }

    #[test]
    fn inbox_lookup_by_sender() {
        let inbox = Inbox::from_map([(ProcessId(3), "m")].into_iter().collect());
        assert_eq!(inbox.from_sender(ProcessId(3)), Some(&"m"));
        assert_eq!(inbox.from_sender(ProcessId(1)), None);
        assert_eq!(inbox.senders().collect::<Vec<_>>(), vec![ProcessId(3)]);
    }

    #[test]
    fn empty_boxes_report_empty() {
        assert!(Outbox::<u8>::new().is_empty());
        assert!(Inbox::<u8>::new().is_empty());
    }
}
