//! A minimal scoped-thread work pool.
//!
//! The Campaign runner needs data parallelism but the workspace builds with
//! zero external dependencies, so instead of rayon this module drives a
//! `std::thread::scope` worker pool over a shared atomic work index. Results
//! come back in input order regardless of scheduling.
//!
//! Items are handed to workers **by value**: each work item is claimed
//! exactly once (a per-item `Mutex<Option<T>>` turnstile keeps the claim
//! safe without `unsafe`), so callers never clone items to keep a copy for
//! the result pairing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of workers to use when the caller asked for "auto" (`0`):
/// the machine's available parallelism, capped by the number of items.
pub(crate) fn resolve_threads(requested: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    let chosen = if requested == 0 { hw } else { requested };
    chosen.clamp(1, items.max(1))
}

/// Applies `f` to every item on a pool of `threads` workers (0 = auto),
/// returning results in input order. Each worker takes ownership of the
/// items it claims; scheduling is dynamic (work stealing via a shared
/// index), so grids with wildly uneven per-point cost stay balanced.
///
/// Public because downstream crates reuse the pool for their own data
/// parallelism (e.g. `ba-core` runs the falsifier's two bit orientations
/// concurrently); [`Campaign`](crate::Campaign) is built on it.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let threads = resolve_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut chunk = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= slots.len() {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("work-item lock poisoned")
                            .take()
                            .expect("each index is claimed exactly once");
                        chunk.push((i, f(i, item)));
                    }
                    chunk
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(items, 4, |i, item| {
            assert_eq!(i, item);
            item * 2
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_threaded_and_parallel_agree() {
        let items: Vec<u64> = (0..33).collect();
        let serial = par_map(items.clone(), 1, |_, x| x * x);
        let parallel = par_map(items, 8, |_, x| x * x);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = Vec::new();
        let out: Vec<u8> = par_map(items, 0, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_own_their_items() {
        // A non-Clone item type proves ownership transfer: this would not
        // compile if the pool needed to clone items.
        struct Owned(usize);
        let items: Vec<Owned> = (0..16).map(Owned).collect();
        let out = par_map(items, 4, |_, item| item.0 + 1);
        assert_eq!(out, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn auto_thread_count_is_sane() {
        assert!(resolve_threads(0, 100) >= 1);
        assert_eq!(resolve_threads(16, 3), 3);
        assert_eq!(resolve_threads(2, 100), 2);
        assert_eq!(resolve_threads(5, 0), 1);
    }
}
