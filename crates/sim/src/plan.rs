//! Omission adversaries: per-message fate decisions.
//!
//! The omission failure model (paper §3) lets the static adversary corrupt up
//! to `t` processes that may *send-omit* or *receive-omit* messages while
//! otherwise following their state machine. An [`OmissionPlan`] encodes the
//! adversary's strategy as a function from `(round, sender, receiver,
//! payload)` to a [`Fate`]. The executor enforces *omission-validity*: a fate
//! other than [`Fate::Deliver`] is only legal if the blamed process is in the
//! execution's fault set.

use std::collections::{BTreeMap, BTreeSet};

use crate::ids::{ProcessId, Round};
use crate::mailbox::ReceiverMask;
use crate::rng::SimRng;
use crate::value::Payload;

/// What happens to one message in transit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fate {
    /// The message is sent and received normally.
    Deliver,
    /// The (faulty) sender omits sending: the message appears in the
    /// sender's `send_omitted` set and the receiver never sees it.
    SendOmit,
    /// The message is sent, but the (faulty) receiver omits receiving it: it
    /// appears in the sender's `sent` set and the receiver's
    /// `receive_omitted` set.
    ReceiveOmit,
}

impl Fate {
    /// Which process is blamed for a non-delivery, if any.
    pub fn blamed(self, sender: ProcessId, receiver: ProcessId) -> Option<ProcessId> {
        match self {
            Fate::Deliver => None,
            Fate::SendOmit => Some(sender),
            Fate::ReceiveOmit => Some(receiver),
        }
    }
}

/// An omission-adversary strategy.
///
/// `fate` is consulted once for every message the protocol emits, in a
/// deterministic order (ascending round, then sender, then receiver), so
/// stateful plans (e.g. seeded random plans) are reproducible.
pub trait OmissionPlan<M> {
    /// Decides the fate of the message `payload` sent from `sender` to
    /// `receiver` in `round`.
    fn fate(&mut self, round: Round, sender: ProcessId, receiver: ProcessId, payload: &M) -> Fate;

    /// Decides a whole broadcast fan-out at once: pushes exactly one [`Fate`]
    /// per mask bit into `out`, in ascending receiver order. The default
    /// defers to [`fate`](OmissionPlan::fate) per receiver; structured plans
    /// (fault-free, isolation) override it to decide the fan-out without a
    /// per-receiver membership test. Must be decision-for-decision identical
    /// to the per-receiver path — the engine's bit-for-bit equivalence
    /// guarantees rest on it.
    fn fate_broadcast(
        &mut self,
        round: Round,
        sender: ProcessId,
        mask: &ReceiverMask,
        payload: &M,
        out: &mut Vec<Fate>,
    ) {
        out.extend(
            mask.iter()
                .map(|receiver| self.fate(round, sender, receiver, payload)),
        );
    }
}

impl<M, T: OmissionPlan<M> + ?Sized> OmissionPlan<M> for &mut T {
    fn fate(&mut self, round: Round, sender: ProcessId, receiver: ProcessId, payload: &M) -> Fate {
        (**self).fate(round, sender, receiver, payload)
    }
    fn fate_broadcast(
        &mut self,
        round: Round,
        sender: ProcessId,
        mask: &ReceiverMask,
        payload: &M,
        out: &mut Vec<Fate>,
    ) {
        (**self).fate_broadcast(round, sender, mask, payload, out)
    }
}

impl<M, T: OmissionPlan<M> + ?Sized> OmissionPlan<M> for Box<T> {
    fn fate(&mut self, round: Round, sender: ProcessId, receiver: ProcessId, payload: &M) -> Fate {
        (**self).fate(round, sender, receiver, payload)
    }
    fn fate_broadcast(
        &mut self,
        round: Round,
        sender: ProcessId,
        mask: &ReceiverMask,
        payload: &M,
        out: &mut Vec<Fate>,
    ) {
        (**self).fate_broadcast(round, sender, mask, payload, out)
    }
}

/// The fault-free plan: every message is delivered.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NoFaults;

impl<M> OmissionPlan<M> for NoFaults {
    fn fate(&mut self, _: Round, _: ProcessId, _: ProcessId, _: &M) -> Fate {
        Fate::Deliver
    }

    fn fate_broadcast(
        &mut self,
        _: Round,
        _: ProcessId,
        mask: &ReceiverMask,
        _: &M,
        out: &mut Vec<Fate>,
    ) {
        out.resize(out.len() + mask.len(), Fate::Deliver);
    }
}

/// Group isolation, Definition 1 of the paper.
///
/// A group `G ⊊ Π` is *isolated from round k* iff every `p ∈ G` is faulty,
/// never send-omits, and receive-omits exactly the messages sent to it by
/// processes outside `G` in rounds `≥ k`.
///
/// ```
/// use ba_sim::{IsolationPlan, OmissionPlan, Fate, ProcessId, Round};
/// let mut plan = IsolationPlan::new([ProcessId(2), ProcessId(3)], Round(2));
/// // Round 1: everything delivered.
/// assert_eq!(plan.fate(Round(1), ProcessId(0), ProcessId(2), &()), Fate::Deliver);
/// // Round 2 onward: messages from outside the group are receive-omitted…
/// assert_eq!(plan.fate(Round(2), ProcessId(0), ProcessId(2), &()), Fate::ReceiveOmit);
/// // …but intra-group traffic and traffic to the outside still flow.
/// assert_eq!(plan.fate(Round(5), ProcessId(3), ProcessId(2), &()), Fate::Deliver);
/// assert_eq!(plan.fate(Round(5), ProcessId(2), ProcessId(0), &()), Fate::Deliver);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IsolationPlan {
    group: BTreeSet<ProcessId>,
    from: Round,
}

impl IsolationPlan {
    /// Isolates `group` from round `from` (inclusive).
    pub fn new<I: IntoIterator<Item = ProcessId>>(group: I, from: Round) -> Self {
        IsolationPlan {
            group: group.into_iter().collect(),
            from,
        }
    }

    /// The isolated group.
    pub fn group(&self) -> &BTreeSet<ProcessId> {
        &self.group
    }

    /// The first round in which the group drops outside messages.
    pub fn from_round(&self) -> Round {
        self.from
    }
}

impl<M> OmissionPlan<M> for IsolationPlan {
    fn fate(&mut self, round: Round, sender: ProcessId, receiver: ProcessId, _: &M) -> Fate {
        if round >= self.from && self.group.contains(&receiver) && !self.group.contains(&sender) {
            Fate::ReceiveOmit
        } else {
            Fate::Deliver
        }
    }

    fn fate_broadcast(
        &mut self,
        round: Round,
        sender: ProcessId,
        mask: &ReceiverMask,
        _: &M,
        out: &mut Vec<Fate>,
    ) {
        // Pre-fill Deliver, then patch the (few) isolated receivers by rank:
        // O(fan-out + |group|) instead of a set lookup per receiver.
        let base = out.len();
        out.resize(base + mask.len(), Fate::Deliver);
        if round < self.from || self.group.contains(&sender) {
            return;
        }
        for &p in &self.group {
            if let Some(rank) = mask.rank(p) {
                out[base + rank] = Fate::ReceiveOmit;
            }
        }
    }
}

/// Two groups isolated independently — the shape of the paper's merged
/// execution `E^{B(k_1), C(k_2)}` (Figure 2) when driven directly as an
/// omission plan.
///
/// Note that the *proof's* merged execution is constructed by re-running the
/// two original executions' behaviors (`ba-core`'s `merge`); this plan
/// produces the same execution only because the protocols are deterministic,
/// and it is used for cross-validation and direct experiments.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DoubleIsolationPlan {
    first: IsolationPlan,
    second: IsolationPlan,
}

impl DoubleIsolationPlan {
    /// Isolates `b` from round `kb` and `c` from round `kc`.
    ///
    /// # Panics
    ///
    /// Panics if the two groups intersect.
    pub fn new(b: IsolationPlan, c: IsolationPlan) -> Self {
        assert!(
            b.group().is_disjoint(c.group()),
            "isolated groups must be disjoint"
        );
        DoubleIsolationPlan {
            first: b,
            second: c,
        }
    }

    /// The two constituent isolation plans.
    pub fn parts(&self) -> (&IsolationPlan, &IsolationPlan) {
        (&self.first, &self.second)
    }
}

impl<M> OmissionPlan<M> for DoubleIsolationPlan {
    fn fate(&mut self, round: Round, sender: ProcessId, receiver: ProcessId, payload: &M) -> Fate {
        match self.first.fate(round, sender, receiver, payload) {
            Fate::Deliver => self.second.fate(round, sender, receiver, payload),
            other => other,
        }
    }
}

/// An explicit table of exceptions over a default of [`Fate::Deliver`].
///
/// Useful for hand-crafted counterexample executions in tests.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TableOmissionPlan {
    entries: BTreeMap<(Round, ProcessId, ProcessId), Fate>,
}

impl TableOmissionPlan {
    /// Creates an empty table (all messages delivered).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the fate of the message from `sender` to `receiver` in `round`.
    pub fn set(
        &mut self,
        round: Round,
        sender: ProcessId,
        receiver: ProcessId,
        fate: Fate,
    ) -> &mut Self {
        self.entries.insert((round, sender, receiver), fate);
        self
    }

    /// The number of explicit entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff the table has no exceptions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<M> OmissionPlan<M> for TableOmissionPlan {
    fn fate(&mut self, round: Round, sender: ProcessId, receiver: ProcessId, _: &M) -> Fate {
        self.entries
            .get(&(round, sender, receiver))
            .copied()
            .unwrap_or(Fate::Deliver)
    }
}

/// A seeded random omission adversary: every message touching a faulty
/// process is dropped with the configured probabilities.
///
/// Deterministic for a fixed seed because the executor consults plans in a
/// deterministic message order. Used for failure-injection testing.
#[derive(Clone, Debug)]
pub struct RandomOmissionPlan {
    faulty: BTreeSet<ProcessId>,
    p_send_omit: f64,
    p_receive_omit: f64,
    rng: SimRng,
}

impl RandomOmissionPlan {
    /// Creates a plan in which each message from a faulty sender is
    /// send-omitted with probability `p_send_omit`, and (otherwise) each
    /// message to a faulty receiver is receive-omitted with probability
    /// `p_receive_omit`.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]`.
    pub fn new<I: IntoIterator<Item = ProcessId>>(
        faulty: I,
        p_send_omit: f64,
        p_receive_omit: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_send_omit),
            "p_send_omit out of range"
        );
        assert!(
            (0.0..=1.0).contains(&p_receive_omit),
            "p_receive_omit out of range"
        );
        RandomOmissionPlan {
            faulty: faulty.into_iter().collect(),
            p_send_omit,
            p_receive_omit,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// The corrupted processes this plan may blame.
    pub fn faulty(&self) -> &BTreeSet<ProcessId> {
        &self.faulty
    }
}

impl<M> OmissionPlan<M> for RandomOmissionPlan {
    fn fate(&mut self, _: Round, sender: ProcessId, receiver: ProcessId, _: &M) -> Fate {
        if self.faulty.contains(&sender) && self.rng.gen_bool(self.p_send_omit) {
            Fate::SendOmit
        } else if self.faulty.contains(&receiver) && self.rng.gen_bool(self.p_receive_omit) {
            Fate::ReceiveOmit
        } else {
            Fate::Deliver
        }
    }
}

/// The crash adversary, expressed in the omission model: each listed
/// process send-omits (and receive-omits) everything from its crash round
/// onward — the classic crash-stop failure, strictly weaker than general
/// omission.
///
/// Useful for protocols like FloodSet that tolerate crashes but *not*
/// general omission: the distinction is exactly the adversarial power the
/// paper's lower-bound proof draws on.
///
/// ```
/// use ba_sim::{CrashPlan, OmissionPlan, Fate, ProcessId, Round};
/// let mut plan = CrashPlan::new([(ProcessId(1), Round(2))]);
/// assert_eq!(plan.fate(Round(1), ProcessId(1), ProcessId(0), &()), Fate::Deliver);
/// assert_eq!(plan.fate(Round(2), ProcessId(1), ProcessId(0), &()), Fate::SendOmit);
/// assert_eq!(plan.fate(Round(3), ProcessId(0), ProcessId(1), &()), Fate::ReceiveOmit);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CrashPlan {
    crashes: BTreeMap<ProcessId, Round>,
}

impl CrashPlan {
    /// Creates a plan crashing each listed process at the start of its
    /// round (inclusive).
    pub fn new<I: IntoIterator<Item = (ProcessId, Round)>>(crashes: I) -> Self {
        CrashPlan {
            crashes: crashes.into_iter().collect(),
        }
    }

    /// The processes this plan crashes (all must be in the execution's
    /// fault set).
    pub fn crashed(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.crashes.keys().copied()
    }
}

impl<M> OmissionPlan<M> for CrashPlan {
    fn fate(&mut self, round: Round, sender: ProcessId, receiver: ProcessId, _: &M) -> Fate {
        if self.crashes.get(&sender).is_some_and(|r| round >= *r) {
            Fate::SendOmit
        } else if self.crashes.get(&receiver).is_some_and(|r| round >= *r) {
            Fate::ReceiveOmit
        } else {
            Fate::Deliver
        }
    }
}

/// Adapts a closure into an [`OmissionPlan`].
///
/// ```
/// use ba_sim::{FnPlan, OmissionPlan, Fate, ProcessId, Round};
/// let mut drop_all_to_p0 = FnPlan(|_round, _s, r: ProcessId, _m: &u8| {
///     if r == ProcessId(0) { Fate::ReceiveOmit } else { Fate::Deliver }
/// });
/// assert_eq!(drop_all_to_p0.fate(Round(1), ProcessId(1), ProcessId(0), &3), Fate::ReceiveOmit);
/// ```
#[derive(Clone, Debug)]
pub struct FnPlan<F>(pub F);

impl<M, F> OmissionPlan<M> for FnPlan<F>
where
    F: FnMut(Round, ProcessId, ProcessId, &M) -> Fate,
    M: Payload,
{
    fn fate(&mut self, round: Round, sender: ProcessId, receiver: ProcessId, payload: &M) -> Fate {
        (self.0)(round, sender, receiver, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_blames_the_right_process() {
        let (s, r) = (ProcessId(1), ProcessId(2));
        assert_eq!(Fate::Deliver.blamed(s, r), None);
        assert_eq!(Fate::SendOmit.blamed(s, r), Some(s));
        assert_eq!(Fate::ReceiveOmit.blamed(s, r), Some(r));
    }

    #[test]
    fn isolation_blocks_only_inbound_cross_group_after_start() {
        let mut plan = IsolationPlan::new([ProcessId(1)], Round(3));
        // Before the start round everything is delivered.
        assert_eq!(
            plan.fate(Round(2), ProcessId(0), ProcessId(1), &()),
            Fate::Deliver
        );
        // From the start round, inbound cross-group messages are dropped.
        assert_eq!(
            plan.fate(Round(3), ProcessId(0), ProcessId(1), &()),
            Fate::ReceiveOmit
        );
        assert_eq!(
            plan.fate(Round(9), ProcessId(2), ProcessId(1), &()),
            Fate::ReceiveOmit
        );
        // The isolated group never send-omits.
        assert_eq!(
            plan.fate(Round(9), ProcessId(1), ProcessId(0), &()),
            Fate::Deliver
        );
    }

    #[test]
    fn double_isolation_combines_independent_groups() {
        let b = IsolationPlan::new([ProcessId(1)], Round(2));
        let c = IsolationPlan::new([ProcessId(2)], Round(4));
        let mut plan = DoubleIsolationPlan::new(b, c);
        assert_eq!(
            plan.fate(Round(2), ProcessId(0), ProcessId(1), &()),
            Fate::ReceiveOmit
        );
        assert_eq!(
            plan.fate(Round(2), ProcessId(0), ProcessId(2), &()),
            Fate::Deliver
        );
        assert_eq!(
            plan.fate(Round(4), ProcessId(0), ProcessId(2), &()),
            Fate::ReceiveOmit
        );
        // Cross-isolated-group traffic is blocked for the receiver's group.
        assert_eq!(
            plan.fate(Round(4), ProcessId(1), ProcessId(2), &()),
            Fate::ReceiveOmit
        );
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn double_isolation_rejects_overlap() {
        let b = IsolationPlan::new([ProcessId(1)], Round(1));
        let c = IsolationPlan::new([ProcessId(1)], Round(2));
        let _ = DoubleIsolationPlan::new(b, c);
    }

    #[test]
    fn table_plan_defaults_to_deliver() {
        let mut plan = TableOmissionPlan::new();
        plan.set(Round(1), ProcessId(0), ProcessId(1), Fate::SendOmit);
        assert_eq!(
            OmissionPlan::<u8>::fate(&mut plan, Round(1), ProcessId(0), ProcessId(1), &0),
            Fate::SendOmit
        );
        assert_eq!(
            OmissionPlan::<u8>::fate(&mut plan, Round(2), ProcessId(0), ProcessId(1), &0),
            Fate::Deliver
        );
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn random_plan_is_deterministic_per_seed() {
        let observe = |seed: u64| -> Vec<Fate> {
            let mut plan = RandomOmissionPlan::new([ProcessId(0)], 0.5, 0.5, seed);
            (0..32)
                .map(|i| {
                    OmissionPlan::<u8>::fate(
                        &mut plan,
                        Round(1),
                        ProcessId(i % 3),
                        ProcessId((i + 1) % 3),
                        &0,
                    )
                })
                .collect()
        };
        assert_eq!(observe(7), observe(7));
        assert_ne!(
            observe(7),
            observe(8),
            "different seeds should differ (w.h.p.)"
        );
    }

    #[test]
    fn random_plan_never_blames_correct_processes() {
        let mut plan = RandomOmissionPlan::new([ProcessId(2)], 1.0, 1.0, 3);
        // Message between two correct processes is always delivered.
        assert_eq!(
            OmissionPlan::<u8>::fate(&mut plan, Round(1), ProcessId(0), ProcessId(1), &0),
            Fate::Deliver
        );
        // Faulty sender always send-omits at p = 1.
        assert_eq!(
            OmissionPlan::<u8>::fate(&mut plan, Round(1), ProcessId(2), ProcessId(1), &0),
            Fate::SendOmit
        );
    }
}
