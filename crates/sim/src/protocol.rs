//! The deterministic state-machine interface every agreement protocol
//! implements (paper §2 "Processes & adversary" and §A.1.3).

use crate::ids::{ProcessId, Round};
use crate::mailbox::{Inbox, Outbox};
use crate::value::{Payload, Value};

/// Static information a process knows about the system it runs in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProcessCtx {
    /// This process's identifier.
    pub id: ProcessId,
    /// Total number of processes `n`.
    pub n: usize,
    /// Upper bound `t < n` on the number of faulty processes.
    pub t: usize,
}

impl ProcessCtx {
    /// Creates a context.
    ///
    /// # Panics
    ///
    /// Panics unless `t < n` and `id < n`.
    pub fn new(id: ProcessId, n: usize, t: usize) -> Self {
        assert!(t < n, "require t < n (got t = {t}, n = {n})");
        assert!(id.index() < n, "process id {id} out of range for n = {n}");
        ProcessCtx { id, n, t }
    }

    /// Iterates over every process except this one — the legal receivers of
    /// this process's messages (the model forbids self-sends).
    pub fn others(&self) -> impl Iterator<Item = ProcessId> + '_ {
        let me = self.id;
        ProcessId::all(self.n).filter(move |p| *p != me)
    }

    /// Iterates over every process, including this one.
    pub fn all(&self) -> impl Iterator<Item = ProcessId> + Clone {
        ProcessId::all(self.n)
    }
}

/// A deterministic agreement-protocol state machine exposing the paper's
/// `propose(v ∈ V_I)` / `decide(v' ∈ V_O)` interface.
///
/// The paper's state-transition function `A(s, M_R) = (s', M_S)` maps a
/// process's state at the start of round `k` plus the messages it received in
/// round `k` to its state at the start of round `k + 1` plus the messages it
/// sends in round `k + 1` (§A.1.3). This trait mirrors that discipline:
///
/// * [`Protocol::propose`] is invoked once, before round 1, with the
///   process's proposal; it returns the messages sent **in round 1**
///   (the paper's `M⁰_i` / `M¹_i` — round-1 messages depend only on the
///   initial state).
/// * [`Protocol::round`] is invoked once per round `k` with the inbox of
///   round `k`; it returns the messages sent **in round `k + 1`**.
/// * [`Protocol::decision`] exposes the decision component of the state;
///   once `Some`, it must never change (decision irrevocability, condition
///   (6) on behaviors). The executor enforces this.
///
/// Implementations must be deterministic — identical proposal and inbox
/// sequences must yield identical outboxes and decisions. The proof
/// machinery in `ba-core` (isolation families, `merge`, the falsifier)
/// relies on re-running cloned state machines and demands exact agreement.
pub trait Protocol: Clone + Send {
    /// The proposal domain `V_I`.
    type Input: Value;
    /// The decision domain `V_O` (for interactive consistency this is a
    /// vector type, distinct from `V_I`).
    type Output: Value;
    /// Message payload exchanged by the protocol.
    type Msg: Payload;

    /// Records the proposal and returns the messages to send in round 1.
    fn propose(&mut self, ctx: &ProcessCtx, proposal: Self::Input) -> Outbox<Self::Msg>;

    /// Processes the messages received in `round` and returns the messages
    /// to send in `round + 1`.
    fn round(
        &mut self,
        ctx: &ProcessCtx,
        round: Round,
        inbox: &Inbox<Self::Msg>,
    ) -> Outbox<Self::Msg>;

    /// The value this process has decided, if any. Must be stable: once
    /// `Some(v)`, every later call must return `Some(v)`.
    fn decision(&self) -> Option<Self::Output>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_others_excludes_self() {
        let ctx = ProcessCtx::new(ProcessId(1), 4, 1);
        let others: Vec<_> = ctx.others().collect();
        assert_eq!(others, vec![ProcessId(0), ProcessId(2), ProcessId(3)]);
    }

    #[test]
    fn ctx_all_includes_self() {
        let ctx = ProcessCtx::new(ProcessId(0), 3, 1);
        assert_eq!(ctx.all().count(), 3);
    }

    #[test]
    #[should_panic(expected = "t < n")]
    fn ctx_rejects_t_equal_n() {
        let _ = ProcessCtx::new(ProcessId(0), 3, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ctx_rejects_id_out_of_range() {
        let _ = ProcessCtx::new(ProcessId(5), 3, 1);
    }
}
