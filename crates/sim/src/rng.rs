//! A small, deterministic, dependency-free PRNG.
//!
//! The workspace builds with no external crates (the container has no
//! network registry), so seeded randomness for adversaries, probers, and
//! property tests comes from this SplitMix64 generator instead of `rand`.
//! Sequences are stable across platforms and releases of this repository:
//! certificates and probe reports cite seeds, and re-running a seed must
//! reproduce the exact execution.

/// A seeded SplitMix64 pseudo-random generator.
///
/// ```
/// use ba_sim::SimRng;
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits, the mantissa width of f64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.next_f64() < p
    }

    /// An integer in `lo..hi` (half-open), uniform up to modulo bias —
    /// at most `width / 2^64` deviation per value, negligible for the
    /// small ranges this repository draws (fault counts, rounds, indices).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniform `usize` index in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_index(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range(lo as u64, hi as u64) as usize
    }

    /// A uniform `f64` in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_f64() * (hi - lo)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<u64> {
            let mut rng = SimRng::seed_from_u64(seed);
            (0..16).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SimRng::seed_from_u64(1);
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
        assert!((0..64).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..256 {
            let v = rng.gen_range(3, 10);
            assert!((3..10).contains(&v));
            let f = rng.gen_f64(0.25, 0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SimRng::seed_from_u64(42);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads} heads of 10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_is_rejected() {
        let mut rng = SimRng::seed_from_u64(0);
        let _ = rng.gen_range(5, 5);
    }
}
