//! The [`Scenario`] builder — the single entry point for constructing
//! executions.
//!
//! The paper's model (§2, §A.1) is *one* execution model with
//! interchangeable adversaries. `Scenario` exposes it that way: pick the
//! system size, the protocol, the inputs, and an [`Adversary`], then `run()`.
//! See the crate-level documentation for a complete runnable example.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use ba_obs::Recorder;

use crate::byzantine::ByzantineBehavior;
use crate::campaign::ScenarioStats;
use crate::error::SimError;
use crate::execution::{Execution, FaultMode};
use crate::executor::{run_slots, ExecutorConfig, Slot};
use crate::fault::{
    AdaptiveWorstCase, FaultBudget, FaultModel, ForgingFaults, MobileOmission, PlannedFaults,
    SchedulerOmission,
};
use crate::ids::{ProcessId, Round};
use crate::plan::{CrashPlan, IsolationPlan, OmissionPlan};
use crate::protocol::Protocol;
use crate::sink::{FullTrace, StatsSink, TraceMode, TraceSink};
use crate::telemetry::RecordingSink;
use crate::value::{Payload, Value};

/// A boxed omission strategy, as accepted by [`Adversary::omission`].
pub type BoxedPlan<'a, M> = Box<dyn OmissionPlan<M> + 'a>;

/// A boxed fault model, as stored in an [`Adversary`].
pub type BoxedFaultModel<'a, M> = Box<dyn FaultModel<M> + 'a>;

/// The result of running a scenario of protocol `P`: the trace-complete
/// execution, or the first model violation.
pub type ScenarioResult<P> = Result<
    Execution<<P as Protocol>::Input, <P as Protocol>::Output, <P as Protocol>::Msg>,
    SimError,
>;

/// A boxed Byzantine behavior, as stored in an [`Adversary`].
pub type BoxedBehavior<'a, I, M> = Box<dyn ByzantineBehavior<I, M> + 'a>;

/// The unified adversary of a [`Scenario`]: Byzantine behaviors occupying
/// process slots, plus an execution-observing [`FaultModel`] deciding
/// corruption and routing.
///
/// Formerly a closed enum; now **constructors over the [`FaultModel`]
/// trait**. The legacy flavors — the paper's omission adversary (§3),
/// Byzantine adversary (§2), the crash adversary, and **mixed** per-process
/// assignments — build canned [`PlannedFaults`] models and behave
/// bit-identically to the enum they replace, while the adaptive regime
/// ([`Adversary::adaptive_worst_case`], [`Adversary::mobile`],
/// [`Adversary::scheduler`], [`Adversary::forge`], and arbitrary
/// [`Adversary::model`]s) plugs into the same execution engine.
pub struct Adversary<'a, I, M> {
    behaviors: BTreeMap<ProcessId, BoxedBehavior<'a, I, M>>,
    model: BoxedFaultModel<'a, M>,
    mode: FaultMode,
    /// A constructor-detected inconsistency, surfaced as a typed error at
    /// run time (constructors are infallible by signature).
    conflict: Option<ProcessId>,
}

impl<'a, I: Value, M: Payload> Adversary<'a, I, M> {
    /// The fault-free adversary.
    pub fn none() -> Self {
        Adversary {
            behaviors: BTreeMap::new(),
            model: Box::new(PlannedFaults::none()),
            mode: FaultMode::Omission,
            conflict: None,
        }
    }

    /// An omission adversary corrupting `faulty`, driven by `plan`.
    pub fn omission(
        faulty: impl IntoIterator<Item = ProcessId>,
        plan: impl OmissionPlan<M> + 'a,
    ) -> Self {
        Adversary {
            behaviors: BTreeMap::new(),
            model: Box::new(PlannedFaults::new(faulty, plan)),
            mode: FaultMode::Omission,
            conflict: None,
        }
    }

    /// Group isolation (paper Definition 1): `group` is faulty and
    /// receive-omits all outside traffic from round `from` on.
    pub fn isolation(group: impl IntoIterator<Item = ProcessId> + Clone, from: Round) -> Self {
        Adversary::omission(group.clone(), IsolationPlan::new(group, from))
    }

    /// The crash adversary: each listed process crash-stops at its round.
    pub fn crash(crashes: impl IntoIterator<Item = (ProcessId, Round)> + Clone) -> Self {
        let faulty: Vec<ProcessId> = crashes.clone().into_iter().map(|(p, _)| p).collect();
        Adversary::omission(faulty, CrashPlan::new(crashes))
    }

    /// A Byzantine adversary with the given per-process behaviors.
    pub fn byzantine(
        behaviors: impl IntoIterator<Item = (ProcessId, BoxedBehavior<'a, I, M>)>,
    ) -> Self {
        let behaviors: BTreeMap<ProcessId, BoxedBehavior<'a, I, M>> =
            behaviors.into_iter().collect();
        let keys: Vec<ProcessId> = behaviors.keys().copied().collect();
        Adversary {
            behaviors,
            model: Box::new(PlannedFaults::new(keys, crate::plan::NoFaults)),
            mode: FaultMode::Byzantine,
            conflict: None,
        }
    }

    /// A Byzantine adversary corrupting a single process.
    pub fn one_byzantine(pid: ProcessId, behavior: impl ByzantineBehavior<I, M> + 'a) -> Self {
        Adversary::byzantine([(pid, Box::new(behavior) as _)])
    }

    /// A mixed adversary: `behaviors` are Byzantine while `omission_faulty`
    /// follow the protocol under `plan` (which may also blame the Byzantine
    /// processes). The two sets must be disjoint and jointly at most `t`.
    pub fn mixed(
        behaviors: impl IntoIterator<Item = (ProcessId, BoxedBehavior<'a, I, M>)>,
        omission_faulty: impl IntoIterator<Item = ProcessId>,
        plan: impl OmissionPlan<M> + 'a,
    ) -> Self {
        let behaviors: BTreeMap<ProcessId, BoxedBehavior<'a, I, M>> =
            behaviors.into_iter().collect();
        let omission_faulty: BTreeSet<ProcessId> = omission_faulty.into_iter().collect();
        let conflict = behaviors
            .keys()
            .find(|p| omission_faulty.contains(p))
            .copied();
        let joint: Vec<ProcessId> = behaviors
            .keys()
            .copied()
            .chain(omission_faulty.iter().copied())
            .collect();
        Adversary {
            behaviors,
            model: Box::new(PlannedFaults::new(joint, plan)),
            mode: FaultMode::Mixed,
            conflict,
        }
    }

    /// The adaptive worst-case adversary ([`AdaptiveWorstCase`]): observes
    /// round 1, then corrupts and mutes the `budget` chattiest processes.
    /// Requires `budget ≤ t` (validated at build time).
    pub fn adaptive_worst_case(budget: usize) -> Self {
        Adversary::model(AdaptiveWorstCase::new(budget))
    }

    /// The mobile adversary ([`MobileOmission`]): corruption moves through
    /// `pool` (one victim at a time, `dwell` rounds each) under a budget of
    /// `|pool| ≤ t` (validated at build time).
    pub fn mobile(pool: impl IntoIterator<Item = ProcessId>, dwell: u64) -> Self {
        Adversary::model(MobileOmission::new(pool, dwell))
    }

    /// The message-scheduling adversary ([`SchedulerOmission`]): seeded
    /// delivery reordering against a capacity-`cap` victim.
    pub fn scheduler(victim: ProcessId, cap: usize, seed: u64) -> Self {
        Adversary::model(SchedulerOmission::new(victim, cap, seed))
    }

    /// The routing-level forging adversary ([`ForgingFaults`]): every
    /// message from a member of `faulty` is replaced with `forged`.
    pub fn forge(faulty: impl IntoIterator<Item = ProcessId>, forged: M) -> Self {
        Adversary::model(ForgingFaults::new(faulty, forged))
    }

    /// An adversary driven by an arbitrary [`FaultModel`] — the extension
    /// point. The execution is stamped with the model's
    /// [`mode`](FaultModel::mode).
    pub fn model(model: impl FaultModel<M> + 'a) -> Self {
        let mode = model.mode();
        Adversary {
            behaviors: BTreeMap::new(),
            model: Box::new(model),
            mode,
            conflict: None,
        }
    }

    /// An arbitrary [`FaultModel`] combined with Byzantine slot behaviors
    /// (stamped [`FaultMode::Mixed`] when both are present). The behaviors'
    /// processes are corrupted by construction and count against the joint
    /// budget; they may legitimately also appear in the model's
    /// [`FaultBudget::Static`] set — that is exactly how
    /// [`Adversary::byzantine`] and [`Adversary::mixed`] are represented
    /// internally, and how a plan is allowed to blame Byzantine processes.
    /// Consequently no behavior/fault-set overlap guard applies here: the
    /// [`Adversary::mixed`] rejection of a process listed both as a
    /// behavior and as *omission*-faulty is a constructor-level check on
    /// that constructor's two input lists, which this lower-level entry
    /// point cannot distinguish.
    pub fn model_with_behaviors(
        behaviors: impl IntoIterator<Item = (ProcessId, BoxedBehavior<'a, I, M>)>,
        model: impl FaultModel<M> + 'a,
    ) -> Self {
        let behaviors: BTreeMap<ProcessId, BoxedBehavior<'a, I, M>> =
            behaviors.into_iter().collect();
        let mode = if behaviors.is_empty() {
            model.mode()
        } else {
            FaultMode::Mixed
        };
        Adversary {
            behaviors,
            model: Box::new(model),
            mode,
            conflict: None,
        }
    }

    /// Overrides the [`FaultMode`] stamped on produced executions — for
    /// custom models reproducing a legacy flavor exactly.
    pub fn with_fault_mode(mut self, mode: FaultMode) -> Self {
        self.mode = mode;
        self
    }

    /// The statically known corruption set: the model's
    /// [`FaultBudget::Static`] set joined with the Byzantine behaviors.
    /// Adaptive models choose their victims at run time and contribute
    /// nothing here.
    pub fn faulty_set(&self) -> BTreeSet<ProcessId> {
        let mut set: BTreeSet<ProcessId> = self.behaviors.keys().copied().collect();
        if let FaultBudget::Static(s) = self.model.budget() {
            set.extend(s);
        }
        set
    }

    /// The [`FaultMode`] stamped on produced executions.
    pub fn fault_mode(&self) -> FaultMode {
        self.mode
    }

    /// Decomposes the adversary for the executor.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> Result<
        (
            BTreeMap<ProcessId, BoxedBehavior<'a, I, M>>,
            BoxedFaultModel<'a, M>,
            FaultMode,
        ),
        SimError,
    > {
        if let Some(process) = self.conflict {
            return Err(SimError::BehaviorMismatch { process });
        }
        Ok((self.behaviors, self.model, self.mode))
    }
}

impl<I, M> fmt::Debug for Adversary<'_, I, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Adversary {{ mode: {:?}, byzantine: {:?}, budget: {:?} }}",
            self.mode,
            self.behaviors.keys(),
            self.model.budget(),
        )
    }
}

/// The first stage of the builder: system size and executor knobs, before a
/// protocol type is bound.
///
/// Validation is deferred to [`ProtocolScenario::run`], which reports
/// problems as typed [`SimError`]s instead of panicking.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scenario {
    n: usize,
    t: usize,
    max_rounds: Option<u64>,
    stop_when_quiescent: Option<bool>,
    trace_mode: Option<TraceMode>,
}

impl Scenario {
    /// Starts a scenario over `n` processes with resilience bound `t`.
    pub fn new(n: usize, t: usize) -> Self {
        Scenario {
            n,
            t,
            max_rounds: None,
            stop_when_quiescent: None,
            trace_mode: None,
        }
    }

    /// Starts a scenario adopting every knob of an existing
    /// [`ExecutorConfig`].
    pub fn config(cfg: &ExecutorConfig) -> Self {
        Scenario {
            n: cfg.n,
            t: cfg.t,
            max_rounds: Some(cfg.max_rounds),
            stop_when_quiescent: Some(cfg.stop_when_quiescent),
            trace_mode: Some(cfg.trace_mode),
        }
    }

    /// Sets the hard horizon (default: `ExecutorConfig`'s derived horizon).
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Enables or disables early stopping at quiescence (default: enabled).
    pub fn stop_when_quiescent(mut self, stop: bool) -> Self {
        self.stop_when_quiescent = Some(stop);
        self
    }

    /// Sets the [`TraceMode`] consumed by stats-producing entry points
    /// ([`ProtocolScenario::run_report`] and [`Campaign`](crate::Campaign)
    /// sweeps). Default: [`TraceMode::Stats`].
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = Some(mode);
        self
    }

    /// Binds the protocol under test, by factory.
    pub fn protocol<'a, P, F>(self, factory: F) -> ProtocolScenario<'a, P, F>
    where
        P: Protocol,
        F: Fn(ProcessId) -> P,
    {
        ProtocolScenario {
            base: self,
            factory,
            inputs: None,
            adversary: Adversary::none(),
            recorder: None,
        }
    }

    /// Resolves the executor configuration, reporting invalid `(n, t)` as a
    /// typed error.
    fn resolve_config(self) -> Result<ExecutorConfig, SimError> {
        let mut cfg = ExecutorConfig::try_new(self.n, self.t)?;
        if let Some(r) = self.max_rounds {
            cfg.max_rounds = r;
        }
        if let Some(s) = self.stop_when_quiescent {
            cfg.stop_when_quiescent = s;
        }
        if let Some(m) = self.trace_mode {
            cfg.trace_mode = m;
        }
        Ok(cfg)
    }
}

/// The protocol-bound stage of the builder; see [`Scenario`].
pub struct ProtocolScenario<'a, P: Protocol, F> {
    base: Scenario,
    factory: F,
    inputs: Option<Vec<P::Input>>,
    adversary: Adversary<'a, P::Input, P::Msg>,
    recorder: Option<Arc<dyn Recorder>>,
}

impl<'a, P, F> ProtocolScenario<'a, P, F>
where
    P: Protocol,
    F: Fn(ProcessId) -> P,
{
    /// Sets the proposal of each process, in process-id order. Must have
    /// exactly `n` entries by `run()` time.
    pub fn inputs(mut self, inputs: impl IntoIterator<Item = P::Input>) -> Self {
        self.inputs = Some(inputs.into_iter().collect());
        self
    }

    /// Every process proposes the same value.
    pub fn uniform_input(mut self, value: P::Input) -> Self {
        self.inputs = Some(vec![value; self.base.n]);
        self
    }

    /// Installs the adversary (default: [`Adversary::none`]).
    pub fn adversary(mut self, adversary: Adversary<'a, P::Input, P::Msg>) -> Self {
        self.adversary = adversary;
        self
    }

    /// Sets the hard horizon.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.base = self.base.max_rounds(max_rounds);
        self
    }

    /// Enables or disables early stopping at quiescence.
    pub fn stop_when_quiescent(mut self, stop: bool) -> Self {
        self.base = self.base.stop_when_quiescent(stop);
        self
    }

    /// Sets the [`TraceMode`] consumed by [`ProtocolScenario::run_report`]
    /// and [`Campaign`](crate::Campaign) sweeps.
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.base = self.base.trace_mode(mode);
        self
    }

    /// Installs a telemetry [`Recorder`]: the run's sink is wrapped in a
    /// [`RecordingSink`], mirroring per-round traffic and fault-directive
    /// events into the recorder. Recording is **observation-only** — every
    /// entry point produces bit-identical results with or without it.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Drives the execution to quiescence or the horizon, materializing the
    /// trace-complete [`Execution`] (always full trace: the result type *is*
    /// the trace).
    ///
    /// # Errors
    ///
    /// All validation is routed through [`SimError`]: invalid `(n, t)`,
    /// wrong input count, out-of-range or overlapping fault assignments,
    /// oversize fault sets, and every model violation the executor detects.
    pub fn run(self) -> ScenarioResult<P> {
        self.run_with_sink(FullTrace::new())
    }

    /// Drives the execution and returns its [`ScenarioStats`] without
    /// materializing a trace: zero payload clones, no fragment allocation.
    ///
    /// The result is value-identical to
    /// [`ScenarioStats::from_execution`] over [`ProtocolScenario::run`]'s
    /// execution (engine-produced executions are valid by construction).
    ///
    /// # Errors
    ///
    /// As [`ProtocolScenario::run`].
    pub fn run_stats(self) -> Result<ScenarioStats<P::Output>, SimError> {
        self.run_with_sink(StatsSink::new())
    }

    /// Produces the [`ScenarioStats`] report honoring the configured
    /// [`TraceMode`]: [`TraceMode::Stats`] (the default) takes the
    /// allocation-free fast path, [`TraceMode::Full`] materializes and
    /// validates the execution first. [`Campaign`](crate::Campaign) sweeps
    /// run every grid point through this method.
    ///
    /// # Errors
    ///
    /// As [`ProtocolScenario::run`].
    pub fn run_report(self) -> Result<ScenarioStats<P::Output>, SimError> {
        match self.base.resolve_config()?.trace_mode {
            TraceMode::Stats => self.run_stats(),
            TraceMode::Full => self.run().map(|exec| ScenarioStats::from_execution(&exec)),
        }
    }

    /// Drives the execution with a caller-provided [`TraceSink`] — the
    /// extension point behind [`ProtocolScenario::run`] ([`FullTrace`]) and
    /// [`ProtocolScenario::run_stats`] ([`StatsSink`]). A configured
    /// [`recorder`](ProtocolScenario::recorder) wraps the sink in a
    /// [`RecordingSink`] first.
    ///
    /// # Errors
    ///
    /// As [`ProtocolScenario::run`].
    pub fn run_with_sink<S: TraceSink<P>>(mut self, sink: S) -> Result<S::Output, SimError> {
        match self.recorder.take() {
            Some(recorder) => self.execute(RecordingSink::new(sink, recorder)),
            None => self.execute(sink),
        }
    }

    fn execute<S: TraceSink<P>>(self, sink: S) -> Result<S::Output, SimError> {
        let cfg = self.base.resolve_config()?;
        let inputs = self.inputs.ok_or(SimError::ProposalCount {
            got: 0,
            expected: cfg.n,
        })?;

        let (mut behaviors, mut model, mode) = self.adversary.into_parts()?;
        let byzantine: BTreeSet<ProcessId> = behaviors.keys().copied().collect();

        let slots: Vec<Slot<'a, P>> = ProcessId::all(cfg.n)
            .map(|pid| match behaviors.remove(&pid) {
                Some(b) => Slot::Byzantine(b),
                None => Slot::Honest((self.factory)(pid)),
            })
            .collect();
        if let Some((stray, _)) = behaviors.into_iter().next() {
            // A behavior was assigned to a process outside 0..n.
            return Err(SimError::BehaviorMismatch { process: stray });
        }
        run_slots(&cfg, slots, &inputs, &byzantine, model.as_mut(), mode, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::byzantine::SilentByzantine;
    use crate::ids::Round;
    use crate::mailbox::{Inbox, Outbox};
    use crate::plan::{Fate, NoFaults, TableOmissionPlan};
    use crate::protocol::ProcessCtx;
    use crate::value::Bit;

    /// Broadcast-own-proposal-every-round; decides own proposal at
    /// `decide_at`; stops sending after `stop_after`.
    #[derive(Clone)]
    struct Chatter {
        proposal: Bit,
        decision: Option<Bit>,
        decide_at: u64,
        stop_after: u64,
    }

    impl Chatter {
        fn new(decide_at: u64, stop_after: u64) -> Self {
            Chatter {
                proposal: Bit::Zero,
                decision: None,
                decide_at,
                stop_after,
            }
        }
    }

    impl Protocol for Chatter {
        type Input = Bit;
        type Output = Bit;
        type Msg = Bit;

        fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
            self.proposal = proposal;
            if self.decide_at <= 1 {
                self.decision = Some(self.proposal);
            }
            let mut out = Outbox::new();
            out.send_to_all(ctx.others(), proposal);
            out
        }

        fn round(&mut self, ctx: &ProcessCtx, round: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
            if round.next().0 >= self.decide_at {
                self.decision = Some(self.proposal);
            }
            let mut out = Outbox::new();
            if round.0 < self.stop_after {
                out.send_to_all(ctx.others(), self.proposal);
            }
            out
        }

        fn decision(&self) -> Option<Bit> {
            self.decision
        }
    }

    #[test]
    fn fault_free_scenario_matches_legacy_omission_run() {
        let exec = Scenario::new(4, 1)
            .protocol(|_| Chatter::new(3, 3))
            .uniform_input(Bit::One)
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert!(exec.quiescent);
        assert!(exec.all_correct_decided(Bit::One));
        assert_eq!(exec.message_complexity(), 36);
        assert_eq!(exec.mode, FaultMode::Omission);
    }

    #[test]
    fn invalid_resilience_is_a_typed_error_not_a_panic() {
        let err = Scenario::new(3, 3)
            .protocol(|_| Chatter::new(2, 2))
            .uniform_input(Bit::Zero)
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::InvalidResilience { n: 3, t: 3 });
    }

    #[test]
    fn missing_inputs_is_a_typed_error() {
        let err = Scenario::new(3, 1)
            .protocol(|_| Chatter::new(2, 2))
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SimError::ProposalCount {
                got: 0,
                expected: 3
            }
        );
    }

    #[test]
    fn isolation_sugar_matches_explicit_plan() {
        let group = [ProcessId(3)];
        let explicit = Scenario::new(4, 2)
            .protocol(|_| Chatter::new(3, 3))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::omission(
                group,
                IsolationPlan::new(group, Round(2)),
            ))
            .run()
            .unwrap();
        let sugar = Scenario::new(4, 2)
            .protocol(|_| Chatter::new(3, 3))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::isolation(group, Round(2)))
            .run()
            .unwrap();
        assert_eq!(explicit, sugar);
    }

    #[test]
    fn byzantine_adversary_is_stamped_byzantine() {
        let exec = Scenario::new(3, 1)
            .protocol(|_| Chatter::new(3, 3))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(ProcessId(2), SilentByzantine))
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert_eq!(exec.mode, FaultMode::Byzantine);
        assert!(exec.decision_of(ProcessId(2)).is_none());
        assert_eq!(exec.decision_of(ProcessId(0)), Some(&Bit::One));
    }

    #[test]
    fn mixed_adversary_combines_byzantine_and_omission_faults() {
        // p3 is Byzantine-silent, p2 is omission-faulty (send-omits its
        // round-1 messages) — one execution, two fault flavors. The legacy
        // API could not express this.
        let mut plan = TableOmissionPlan::new();
        for receiver in [ProcessId(0), ProcessId(1), ProcessId(3)] {
            plan.set(Round(1), ProcessId(2), receiver, Fate::SendOmit);
        }
        let exec = Scenario::new(4, 2)
            .protocol(|_| Chatter::new(3, 3))
            .uniform_input(Bit::One)
            .adversary(Adversary::mixed(
                [(ProcessId(3), Box::new(SilentByzantine) as _)],
                [ProcessId(2)],
                plan,
            ))
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert_eq!(exec.mode, FaultMode::Mixed);
        assert_eq!(
            exec.faulty,
            [ProcessId(2), ProcessId(3)].into_iter().collect()
        );
        // p3 sent nothing (Byzantine-silent), p2 send-omitted in round 1.
        assert_eq!(exec.record(ProcessId(3)).total_sent(), 0);
        assert_eq!(exec.record(ProcessId(2)).fragments[0].send_omitted.len(), 3);
        // Correct processes still decide.
        assert_eq!(exec.decision_of(ProcessId(0)), Some(&Bit::One));
        assert_eq!(exec.decision_of(ProcessId(1)), Some(&Bit::One));
    }

    #[test]
    fn mixed_adversary_rejects_overlapping_assignments() {
        let err = Scenario::new(4, 2)
            .protocol(|_| Chatter::new(2, 2))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::mixed(
                [(ProcessId(1), Box::new(SilentByzantine) as _)],
                [ProcessId(1)],
                NoFaults,
            ))
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SimError::BehaviorMismatch {
                process: ProcessId(1)
            }
        );
    }

    #[test]
    fn mixed_adversary_respects_the_joint_fault_budget() {
        let err = Scenario::new(4, 1)
            .protocol(|_| Chatter::new(2, 2))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::mixed(
                [(ProcessId(3), Box::new(SilentByzantine) as _)],
                [ProcessId(2)],
                NoFaults,
            ))
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::TooManyFaulty { got: 2, t: 1 });
    }

    #[test]
    fn out_of_range_behavior_is_rejected() {
        let err = Scenario::new(3, 1)
            .protocol(|_| Chatter::new(2, 2))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::one_byzantine(ProcessId(9), SilentByzantine))
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SimError::BehaviorMismatch {
                process: ProcessId(9)
            }
        );
    }

    #[test]
    fn crash_sugar_crashes_at_the_given_round() {
        let exec = Scenario::new(4, 1)
            .protocol(|_| Chatter::new(3, 3))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::crash([(ProcessId(1), Round(2))]))
            .run()
            .unwrap();
        exec.validate().unwrap();
        let rec = exec.record(ProcessId(1));
        assert_eq!(rec.fragments[0].send_omitted.len(), 0);
        assert_eq!(rec.fragments[1].send_omitted.len(), 3);
    }

    #[test]
    fn config_adoption_preserves_all_knobs() {
        let cfg = ExecutorConfig::new(3, 1)
            .with_stop_when_quiescent(false)
            .with_max_rounds(7);
        let exec = Scenario::config(&cfg)
            .protocol(|_| Chatter::new(2, 2))
            .uniform_input(Bit::Zero)
            .run()
            .unwrap();
        assert_eq!(exec.rounds, 7);
        assert_eq!(exec.record(ProcessId(0)).fragments.len(), 7);
    }

    #[test]
    fn plans_can_be_passed_by_mutable_reference() {
        // `&mut P` implements `OmissionPlan`, so a caller can keep the plan
        // and inspect it after the run.
        let mut plan = TableOmissionPlan::new();
        plan.set(Round(1), ProcessId(2), ProcessId(0), Fate::SendOmit);
        let exec = Scenario::new(3, 1)
            .protocol(|_| Chatter::new(3, 3))
            .uniform_input(Bit::Zero)
            .adversary(Adversary::omission([ProcessId(2)], &mut plan))
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(exec.record(ProcessId(2)).fragments[0].send_omitted.len(), 1);
    }
}
