//! Pluggable trace sinks: what the execution engine *records*.
//!
//! The engine ([`run_slots`](crate::executor)) routes every message through
//! the omission plan and emits routing events to a [`TraceSink`]. What the
//! run produces is the sink's choice:
//!
//! * [`FullTrace`] materializes the trace-complete
//!   [`Execution`](crate::Execution) the proof machinery operates on
//!   (`swap_omission`, `merge`, [`Execution::validate`](crate::Execution::validate))
//!   — bit-for-bit what the engine always produced;
//! * [`StatsSink`] accumulates a [`ScenarioStats`] report with **zero
//!   payload clones and no fragment allocation** — the fast path for
//!   campaign sweeps that only consume aggregate statistics.
//!
//! [`TraceMode`] names the two built-in sinks so infrastructure
//! ([`ExecutorConfig`](crate::ExecutorConfig), [`Scenario`](crate::Scenario),
//! [`Campaign`](crate::Campaign)) can dispatch without naming sink types;
//! custom sinks plug in through
//! [`ProtocolScenario::run_with_sink`](crate::ProtocolScenario::run_with_sink).

use std::collections::{BTreeMap, BTreeSet};

use crate::arena::{CompressedExecution, CompressedFragment, CompressedRecord, PayloadArena};
use crate::campaign::ScenarioStats;
use crate::execution::{Execution, FaultMode};
use crate::ids::{ProcessId, Round};
use crate::mailbox::Inbox;
use crate::protocol::Protocol;

/// Which built-in [`TraceSink`] stats-producing entry points drive.
///
/// [`ProtocolScenario::run`](crate::ProtocolScenario::run) always returns a
/// full [`Execution`](crate::Execution) (its result type demands the trace);
/// this knob selects the engine's recording detail everywhere the caller
/// only consumes [`ScenarioStats`] —
/// [`ProtocolScenario::run_report`](crate::ProtocolScenario::run_report) and
/// the [`Campaign`](crate::Campaign) sweeps built on it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceMode {
    /// Materialize the full execution and derive stats from it (validating
    /// the execution guarantees along the way).
    Full,
    /// Accumulate stats directly in the engine: no payload clones, no
    /// fragment maps, an order of magnitude less memory on large grids.
    #[default]
    Stats,
}

/// Everything the engine knows at the end of a run, handed to
/// [`TraceSink::finish`].
pub struct RunSummary<P: Protocol> {
    /// Number of processes `n`.
    pub n: usize,
    /// Resilience bound `t`.
    pub t: usize,
    /// The adversary model of the run.
    pub mode: FaultMode,
    /// The corrupted processes.
    pub faulty: BTreeSet<ProcessId>,
    /// Per-process decision and the round at the start of which it first
    /// appeared, indexed by process id.
    pub decisions: Vec<Option<(P::Output, Round)>>,
    /// Per-sender count of successfully sent messages (delivered or
    /// receive-omitted), indexed by process id — the engine's own routing
    /// counters, so counting sinks need not mirror them per edge.
    pub sent_counts: Vec<u64>,
    /// Number of rounds actually executed.
    pub rounds: u64,
    /// Whether the execution quiesced (see
    /// [`Execution::quiescent`](crate::Execution::quiescent)).
    pub quiescent: bool,
}

/// A consumer of the engine's routing events.
///
/// The engine calls the methods in a fixed deterministic order: `init` once,
/// then per round `begin_round`, the routing events in ascending
/// `(sender, receiver)` order, and `absorb_inbox` once per process in id
/// order after that process's state transition; `finish` closes the run.
/// Payloads arrive **by value** when only the sink could still want them
/// (omitted messages) and **by reference** when the engine is about to
/// deliver them, so a statistics sink never forces a clone.
pub trait TraceSink<P: Protocol> {
    /// What the run produces.
    type Output;

    /// Called once before round 1 with the system size and proposals.
    fn init(&mut self, n: usize, proposals: &[P::Input]);

    /// Called at the start of every executed round.
    fn begin_round(&mut self, round: Round);

    /// A message successfully sent (it is delivered to, or receive-omitted
    /// by, its receiver). The engine still owns the payload.
    fn sent(&mut self, round: Round, sender: ProcessId, receiver: ProcessId, payload: &P::Msg);

    /// A message send-omitted by its (faulty) sender; the sink takes
    /// ownership of the payload.
    fn send_omitted(
        &mut self,
        round: Round,
        sender: ProcessId,
        receiver: ProcessId,
        payload: P::Msg,
    );

    /// A message receive-omitted by its (faulty) receiver; the sink takes
    /// ownership of the payload. The engine reported the same message via
    /// [`TraceSink::sent`] first.
    fn receive_omitted(
        &mut self,
        round: Round,
        sender: ProcessId,
        receiver: ProcessId,
        payload: P::Msg,
    );

    /// Called after `receiver`'s state transition with the inbox it
    /// observed. The sink **must leave the inbox empty** (drain or clear it);
    /// the engine reuses the buffer for the next round.
    fn absorb_inbox(&mut self, round: Round, receiver: ProcessId, inbox: &mut Inbox<P::Msg>);

    /// A fault directive took effect entering `round`: `process` joined the
    /// corruption set (and was charged against the budget if newly
    /// corrupted). Default: ignored — only observability sinks care.
    fn corrupted(&mut self, _round: Round, _process: ProcessId) {}

    /// A fault directive released `process` from the corruption set
    /// entering `round` (mobile adversaries). Default: ignored.
    fn released(&mut self, _round: Round, _process: ProcessId) {}

    /// Closes the run and produces the output.
    fn finish(self, summary: RunSummary<P>) -> Self::Output;
}

/// The trace-complete sink: materializes the [`Execution`] value the proof
/// constructions inspect, identical to what the engine recorded before
/// sinks existed.
///
/// Internally the trace is recorded **arena-backed**: every payload is
/// hash-consed into a per-run [`PayloadArena`] and fragments hold dense
/// `u32` [`PayloadId`](crate::PayloadId) handles, so an all-to-all round
/// costs one stored payload per *distinct* message instead of one clone per
/// fragment slot. [`finish`](TraceSink::finish) hydrates the compressed
/// trace into the exact [`Execution`] the eager recorder produced.
pub struct FullTrace<P: Protocol> {
    arena: PayloadArena<P::Msg>,
    records: Vec<CompressedRecord<P::Input, P::Output>>,
}

impl<P: Protocol> FullTrace<P> {
    /// An empty full-trace sink.
    pub fn new() -> Self {
        FullTrace {
            arena: PayloadArena::new(),
            records: Vec::new(),
        }
    }

    fn fragment(&mut self, pid: ProcessId, round: Round) -> &mut CompressedFragment {
        &mut self.records[pid.index()].fragments[round.index()]
    }
}

impl<P: Protocol> Default for FullTrace<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> TraceSink<P> for FullTrace<P> {
    type Output = Execution<P::Input, P::Output, P::Msg>;

    fn init(&mut self, _n: usize, proposals: &[P::Input]) {
        self.records = proposals
            .iter()
            .map(|v| CompressedRecord {
                proposal: v.clone(),
                decision: None,
                fragments: Vec::new(),
            })
            .collect();
    }

    fn begin_round(&mut self, _round: Round) {
        for rec in &mut self.records {
            rec.fragments.push(CompressedFragment::default());
        }
    }

    fn sent(&mut self, round: Round, sender: ProcessId, receiver: ProcessId, payload: &P::Msg) {
        let id = self.arena.intern(payload);
        self.fragment(sender, round).sent.insert(receiver, id);
    }

    fn send_omitted(
        &mut self,
        round: Round,
        sender: ProcessId,
        receiver: ProcessId,
        payload: P::Msg,
    ) {
        let id = self.arena.intern_owned(payload);
        self.fragment(sender, round)
            .send_omitted
            .insert(receiver, id);
    }

    fn receive_omitted(
        &mut self,
        round: Round,
        sender: ProcessId,
        receiver: ProcessId,
        payload: P::Msg,
    ) {
        let id = self.arena.intern_owned(payload);
        self.fragment(receiver, round)
            .receive_omitted
            .insert(sender, id);
    }

    fn absorb_inbox(&mut self, round: Round, receiver: ProcessId, inbox: &mut Inbox<P::Msg>) {
        // Intern (usually a hash probe, not a clone) the round's payloads;
        // dense sender order matches BTreeMap order, so inserts are
        // in-order appends.
        for (sender, payload) in inbox.drain() {
            let id = self.arena.intern_owned(payload);
            self.fragment(receiver, round).received.insert(sender, id);
        }
    }

    fn finish(mut self, summary: RunSummary<P>) -> Self::Output {
        for (rec, decision) in self.records.iter_mut().zip(summary.decisions) {
            rec.decision = decision;
        }
        let compressed = CompressedExecution {
            n: summary.n,
            t: summary.t,
            mode: summary.mode,
            faulty: summary.faulty,
            records: self.records,
            rounds: summary.rounds,
            quiescent: summary.quiescent,
        };
        compressed.hydrate(&self.arena)
    }
}

/// The statistics sink: derives its report from the engine's own routing
/// counters and drops every payload in place — no clones, no fragments, no
/// per-event work at all ([`RunSummary::sent_counts`] already holds the
/// per-sender totals).
///
/// Its [`ScenarioStats`] output is value-identical to
/// [`ScenarioStats::from_execution`] applied to the [`FullTrace`] result of
/// the same run (engine-produced executions satisfy the execution
/// guarantees by construction, so the validation pass a full trace enables
/// can never add a violation).
pub struct StatsSink {}

impl StatsSink {
    /// An empty stats sink.
    pub fn new() -> Self {
        StatsSink {}
    }
}

impl Default for StatsSink {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> TraceSink<P> for StatsSink {
    type Output = ScenarioStats<P::Output>;

    fn init(&mut self, _n: usize, _proposals: &[P::Input]) {}

    fn begin_round(&mut self, _round: Round) {}

    fn sent(&mut self, _round: Round, _sender: ProcessId, _receiver: ProcessId, _payload: &P::Msg) {
    }

    fn send_omitted(&mut self, _: Round, _: ProcessId, _: ProcessId, _payload: P::Msg) {}

    fn receive_omitted(&mut self, _: Round, _: ProcessId, _: ProcessId, _payload: P::Msg) {}

    fn absorb_inbox(&mut self, _round: Round, _receiver: ProcessId, inbox: &mut Inbox<P::Msg>) {
        inbox.clear();
    }

    fn finish(self, summary: RunSummary<P>) -> Self::Output {
        let correct = ProcessId::all(summary.n).filter(|p| !summary.faulty.contains(p));
        let decisions: BTreeMap<ProcessId, Option<P::Output>> = correct
            .clone()
            .map(|p| {
                (
                    p,
                    summary.decisions[p.index()]
                        .as_ref()
                        .map(|(v, _)| v.clone()),
                )
            })
            .collect();
        let decided_by = crate::execution::latest_decision_round(
            correct.map(|p| summary.decisions[p.index()].as_ref().map(|(_, r)| *r)),
        );
        let message_complexity = summary
            .sent_counts
            .iter()
            .enumerate()
            .filter(|(i, _)| !summary.faulty.contains(&ProcessId(*i)))
            .map(|(_, c)| c)
            .sum();
        ScenarioStats {
            message_complexity,
            total_messages: summary.sent_counts.iter().sum(),
            rounds: summary.rounds,
            quiescent: summary.quiescent,
            decided_by,
            violations: ScenarioStats::derive_violations(&decisions),
            decisions,
        }
    }
}
