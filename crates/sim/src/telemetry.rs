//! Observation-only execution telemetry: the [`RecordingSink`] wrapper.
//!
//! [`RecordingSink`] wraps any [`TraceSink`] and mirrors the engine's
//! routing stream into a [`ba_obs::Recorder`] without changing what the
//! run produces: per-round traffic histograms, run-level message/round
//! counters, and fault-directive events. Per-message work is a couple of
//! local integer increments — recorder calls happen at round granularity —
//! so the instrumented engine stays within a few percent of the bare one
//! (tracked by the `telemetry-overhead/dolev-strong` bench line).
//!
//! Everything recorded here is derived from the logical execution (message
//! counts, rounds, corruption directives), so it lives in the recorder's
//! **deterministic channel**: identical across thread counts, shardings,
//! and trace modes.

use std::sync::Arc;

use ba_obs::Recorder;

use crate::ids::{ProcessId, Round};
use crate::mailbox::Inbox;
use crate::protocol::Protocol;
use crate::sink::{RunSummary, TraceSink};

/// Wraps a [`TraceSink`], forwarding every engine event unchanged while
/// recording telemetry. `Output` and produced values are exactly the inner
/// sink's — recording is observation-only by construction.
///
/// Emitted metrics (all deterministic):
///
/// * counter `exec.runs` — one per execution;
/// * histogram `exec.round.messages` — successful sends per round;
/// * counters `exec.messages.sent` / `.send_omitted` / `.receive_omitted`;
/// * counter `exec.rounds`, counter `exec.quiescent_runs`;
/// * histogram `exec.decision.rounds` — decision round per correct process;
/// * counter `exec.budget.spend` + events `fault.corrupt` / `fault.release`
///   with `round`/`process` fields, from the engine's directive hooks.
pub struct RecordingSink<S> {
    inner: S,
    recorder: Arc<dyn Recorder>,
    round_sent: u64,
    round_open: bool,
    sent: u64,
    send_omitted: u64,
    receive_omitted: u64,
}

impl<S> RecordingSink<S> {
    /// Wraps `inner`, recording into `recorder`.
    pub fn new(inner: S, recorder: Arc<dyn Recorder>) -> Self {
        RecordingSink {
            inner,
            recorder,
            round_sent: 0,
            round_open: false,
            sent: 0,
            send_omitted: 0,
            receive_omitted: 0,
        }
    }

    fn flush_round(&mut self) {
        if self.round_open {
            self.recorder
                .histogram("exec.round.messages", self.round_sent, &[]);
            self.round_sent = 0;
            self.round_open = false;
        }
    }
}

impl<P: Protocol, S: TraceSink<P>> TraceSink<P> for RecordingSink<S> {
    type Output = S::Output;

    fn init(&mut self, n: usize, proposals: &[P::Input]) {
        self.recorder.counter("exec.runs", 1, &[]);
        self.inner.init(n, proposals);
    }

    fn begin_round(&mut self, round: Round) {
        self.flush_round();
        self.round_open = true;
        self.inner.begin_round(round);
    }

    fn sent(&mut self, round: Round, sender: ProcessId, receiver: ProcessId, payload: &P::Msg) {
        self.sent += 1;
        self.round_sent += 1;
        self.inner.sent(round, sender, receiver, payload);
    }

    fn send_omitted(
        &mut self,
        round: Round,
        sender: ProcessId,
        receiver: ProcessId,
        payload: P::Msg,
    ) {
        self.send_omitted += 1;
        self.inner.send_omitted(round, sender, receiver, payload);
    }

    fn receive_omitted(
        &mut self,
        round: Round,
        sender: ProcessId,
        receiver: ProcessId,
        payload: P::Msg,
    ) {
        self.receive_omitted += 1;
        self.inner.receive_omitted(round, sender, receiver, payload);
    }

    fn absorb_inbox(&mut self, round: Round, receiver: ProcessId, inbox: &mut Inbox<P::Msg>) {
        self.inner.absorb_inbox(round, receiver, inbox);
    }

    fn corrupted(&mut self, round: Round, process: ProcessId) {
        self.recorder.counter("exec.budget.spend", 1, &[]);
        self.recorder.event(
            "fault.corrupt",
            &[
                ("round", round.0.into()),
                ("process", process.index().into()),
            ],
        );
        self.inner.corrupted(round, process);
    }

    fn released(&mut self, round: Round, process: ProcessId) {
        self.recorder.event(
            "fault.release",
            &[
                ("round", round.0.into()),
                ("process", process.index().into()),
            ],
        );
        self.inner.released(round, process);
    }

    fn finish(mut self, summary: RunSummary<P>) -> Self::Output {
        self.flush_round();
        let r = &self.recorder;
        r.counter("exec.messages.sent", self.sent, &[]);
        r.counter("exec.messages.send_omitted", self.send_omitted, &[]);
        r.counter("exec.messages.receive_omitted", self.receive_omitted, &[]);
        r.counter("exec.rounds", summary.rounds, &[]);
        if summary.quiescent {
            r.counter("exec.quiescent_runs", 1, &[]);
        }
        for p in ProcessId::all(summary.n) {
            if summary.faulty.contains(&p) {
                continue;
            }
            if let Some((_, decided)) = &summary.decisions[p.index()] {
                r.histogram("exec.decision.rounds", decided.0, &[]);
            }
        }
        self.inner.finish(summary)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ba_obs::Aggregator;

    use crate::mailbox::Outbox;
    use crate::protocol::ProcessCtx;
    use crate::scenario::{Adversary, Scenario};
    use crate::value::Bit;

    use super::*;

    /// Broadcasts its proposal for two rounds, then decides it.
    #[derive(Clone)]
    struct Gossip {
        proposal: Bit,
        decision: Option<Bit>,
    }

    impl Protocol for Gossip {
        type Input = Bit;
        type Output = Bit;
        type Msg = Bit;

        fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
            self.proposal = proposal;
            let mut out = Outbox::new();
            out.send_to_all(ctx.others(), proposal);
            out
        }

        fn round(&mut self, ctx: &ProcessCtx, round: Round, _: &Inbox<Bit>) -> Outbox<Bit> {
            let mut out = Outbox::new();
            if round.0 < 2 {
                out.send_to_all(ctx.others(), self.proposal);
            } else {
                self.decision = Some(self.proposal);
            }
            out
        }

        fn decision(&self) -> Option<Bit> {
            self.decision
        }
    }

    fn gossip(_: ProcessId) -> Gossip {
        Gossip {
            proposal: Bit::Zero,
            decision: None,
        }
    }

    #[test]
    fn recording_is_observation_only_and_counts_the_execution() {
        let bare = Scenario::new(5, 1)
            .protocol(gossip)
            .uniform_input(Bit::One)
            .adversary(Adversary::mobile([ProcessId(4)], 1))
            .run()
            .unwrap();

        let agg = Arc::new(Aggregator::new());
        let recorded = Scenario::new(5, 1)
            .protocol(gossip)
            .uniform_input(Bit::One)
            .adversary(Adversary::mobile([ProcessId(4)], 1))
            .recorder(agg.clone())
            .run()
            .unwrap();
        assert_eq!(bare, recorded, "recording must not change the execution");

        let snap = agg.snapshot();
        assert_eq!(snap.counters["exec.runs"], 1);
        assert_eq!(snap.counters["exec.messages.sent"], bare.total_messages());
        assert_eq!(snap.counters["exec.rounds"], bare.rounds);
        // The mobile adversary corrupted (and possibly released) p4.
        assert_eq!(snap.counters["exec.budget.spend"], 1);
        assert!(snap.events["fault.corrupt"] >= 1);
        // Per-round traffic histogram saw every executed round.
        assert_eq!(snap.histograms["exec.round.messages"].count, bare.rounds);
        assert_eq!(
            snap.histograms["exec.round.messages"].sum,
            bare.total_messages()
        );
        // Decision rounds: one observation per correct process.
        assert_eq!(snap.histograms["exec.decision.rounds"].count, 4);
    }

    #[test]
    fn stats_and_full_modes_record_identical_deterministic_telemetry() {
        let run = |mode: crate::sink::TraceMode| {
            let agg = Arc::new(Aggregator::new());
            Scenario::new(5, 1)
                .protocol(gossip)
                .uniform_input(Bit::One)
                .adversary(Adversary::adaptive_worst_case(1))
                .trace_mode(mode)
                .recorder(agg.clone())
                .run_report()
                .unwrap();
            agg.snapshot().deterministic()
        };
        assert_eq!(
            run(crate::sink::TraceMode::Stats),
            run(crate::sink::TraceMode::Full)
        );
    }
}
