//! Human-readable execution rendering — round-by-round traffic and decision
//! summaries for debugging, examples, and certificate inspection.

use std::fmt::Write as _;

use crate::execution::Execution;
use crate::ids::{ProcessId, Round};
use crate::value::{Payload, Value};

/// Per-round aggregate statistics of an execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RoundStats {
    /// Messages successfully delivered this round.
    pub delivered: usize,
    /// Messages send-omitted this round.
    pub send_omitted: usize,
    /// Messages receive-omitted this round.
    pub receive_omitted: usize,
    /// Processes whose decision first appeared at the start of the *next*
    /// round (i.e. decided while processing this round).
    pub newly_decided: usize,
}

/// Computes [`RoundStats`] for every executed round.
pub fn round_stats<I: Value, O: Value, M: Payload>(exec: &Execution<I, O, M>) -> Vec<RoundStats> {
    let mut stats = vec![RoundStats::default(); exec.rounds as usize];
    for pid in ProcessId::all(exec.n) {
        let rec = exec.record(pid);
        for (i, frag) in rec.fragments.iter().enumerate() {
            // Count deliveries at the receiver side to avoid double counting.
            stats[i].delivered += frag.received.len();
            stats[i].send_omitted += frag.send_omitted.len();
            stats[i].receive_omitted += frag.receive_omitted.len();
        }
        if let Some((_, round)) = &rec.decision {
            let idx = (round.0.saturating_sub(2)) as usize;
            if round.0 >= 2 && idx < stats.len() {
                stats[idx].newly_decided += 1;
            }
        }
    }
    stats
}

/// Payload-interning profile of an execution: how many fragment slots it
/// holds versus how many **distinct** payloads back them. The ratio is the
/// clone-for-slot saving the arena representation realizes
/// ([`Execution::compress`]) — all-to-all rounds typically push it to `n²`
/// slots per handful of payloads.
pub fn payload_reuse<I: Value, O: Value, M: Payload>(exec: &Execution<I, O, M>) -> (usize, usize) {
    let mut arena = crate::PayloadArena::new();
    let compressed = exec.compress(&mut arena);
    (compressed.slot_count(), arena.len())
}

/// Renders a compact, round-by-round textual summary of an execution:
/// traffic volumes, omissions, and the decision timeline — the shape of the
/// colored bands in the paper's Figures 1 and 2.
///
/// ```
/// use ba_sim::{render_execution, Bit, Inbox, Outbox, ProcessCtx, Protocol,
///              Round, Scenario};
///
/// #[derive(Clone)]
/// struct Noop;
/// impl Protocol for Noop {
///     type Input = Bit; type Output = Bit; type Msg = Bit;
///     fn propose(&mut self, _: &ProcessCtx, _: Bit) -> Outbox<Bit> { Outbox::new() }
///     fn round(&mut self, _: &ProcessCtx, _: Round, _: &Inbox<Bit>) -> Outbox<Bit> { Outbox::new() }
///     fn decision(&self) -> Option<Bit> { Some(Bit::Zero) }
/// }
///
/// let exec = Scenario::new(2, 1)
///     .protocol(|_| Noop)
///     .uniform_input(Bit::Zero)
///     .run()
///     .unwrap();
/// let text = render_execution(&exec);
/// assert!(text.contains("faulty: none"));
/// ```
pub fn render_execution<I, O, M>(exec: &Execution<I, O, M>) -> String
where
    I: Value + std::fmt::Debug,
    O: Value + std::fmt::Debug,
    M: Payload,
{
    let mut out = String::new();
    let faulty = if exec.faulty.is_empty() {
        "none".to_string()
    } else {
        exec.faulty
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(
        out,
        "execution: n = {}, t = {}, mode = {:?}, rounds = {}, quiescent = {}",
        exec.n, exec.t, exec.mode, exec.rounds, exec.quiescent
    );
    let _ = writeln!(out, "faulty: {faulty}");
    let _ = writeln!(
        out,
        "message complexity (correct senders): {}; total messages: {}",
        exec.message_complexity(),
        exec.total_messages()
    );
    let (slots, distinct) = payload_reuse(exec);
    let _ = writeln!(
        out,
        "payload slots: {slots} backed by {distinct} distinct payload(s)"
    );

    let _ = writeln!(
        out,
        "round | delivered | send-omit | recv-omit | newly decided"
    );
    let stats = round_stats(exec);
    let last_active = stats
        .iter()
        .rposition(|s| s.delivered + s.send_omitted + s.receive_omitted + s.newly_decided > 0)
        .map_or(0, |i| i + 1);
    for (i, s) in stats.iter().enumerate().take(last_active) {
        let _ = writeln!(
            out,
            "{:>5} | {:>9} | {:>9} | {:>9} | {:>13}",
            i + 1,
            s.delivered,
            s.send_omitted,
            s.receive_omitted,
            s.newly_decided
        );
    }
    if (last_active as u64) < exec.rounds {
        let _ = writeln!(
            out,
            "rounds {}..{} quiet (no traffic, no new decisions)",
            last_active + 1,
            exec.rounds
        );
    }

    let _ = writeln!(out, "decisions:");
    for pid in ProcessId::all(exec.n) {
        let rec = exec.record(pid);
        let role = if exec.is_correct(pid) {
            "correct"
        } else {
            "FAULTY "
        };
        match &rec.decision {
            Some((v, r)) => {
                let _ = writeln!(
                    out,
                    "  {pid:>4} [{role}] proposed {:?} decided {v:?} (start of round {})",
                    rec.proposal, r.0
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {pid:>4} [{role}] proposed {:?} UNDECIDED",
                    rec.proposal
                );
            }
        }
    }
    out
}

/// Renders the first round in which each process's *received* messages
/// differ between two executions — the per-process indistinguishability
/// frontier.
pub fn render_divergence<I, O, M>(a: &Execution<I, O, M>, b: &Execution<I, O, M>) -> String
where
    I: Value,
    O: Value,
    M: Payload,
{
    let mut out = String::new();
    let _ = writeln!(
        out,
        "indistinguishability frontier (first differing inbox):"
    );
    for pid in ProcessId::all(a.n.min(b.n)) {
        let frontier = first_inbox_divergence(a, b, pid);
        match frontier {
            Some(round) => {
                let _ = writeln!(out, "  {pid:>4}: differs from round {}", round.0);
            }
            None => {
                let _ = writeln!(out, "  {pid:>4}: indistinguishable");
            }
        }
    }
    out
}

/// The first round in which `pid`'s inbox differs between the executions
/// (`None` = the executions are indistinguishable to `pid`, modulo
/// proposals).
pub fn first_inbox_divergence<I, O, M>(
    a: &Execution<I, O, M>,
    b: &Execution<I, O, M>,
    pid: ProcessId,
) -> Option<Round>
where
    I: Value,
    O: Value,
    M: Payload,
{
    let horizon = a.rounds.max(b.rounds);
    for round in Round::up_to(horizon) {
        let empty = std::collections::BTreeMap::new();
        let fa = a
            .record(pid)
            .fragment(round)
            .map_or(&empty, |f| &f.received);
        let fb = b
            .record(pid)
            .fragment(round)
            .map_or(&empty, |f| &f.received);
        if fa != fb {
            return Some(round);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mailbox::{Inbox, Outbox};
    use crate::protocol::{ProcessCtx, Protocol};
    use crate::scenario::{Adversary, Scenario};
    use crate::value::Bit;

    #[derive(Clone)]
    struct Gossip {
        decision: Option<Bit>,
    }

    impl Protocol for Gossip {
        type Input = Bit;
        type Output = Bit;
        type Msg = Bit;

        fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<Bit> {
            let mut out = Outbox::new();
            out.send_to_all(ctx.others(), proposal);
            out
        }

        fn round(&mut self, _: &ProcessCtx, round: Round, inbox: &Inbox<Bit>) -> Outbox<Bit> {
            if round == Round::FIRST {
                self.decision = Some(Bit::from(inbox.iter().any(|(_, b)| *b == Bit::One)));
            }
            Outbox::new()
        }

        fn decision(&self) -> Option<Bit> {
            self.decision
        }
    }

    fn sample(faulty: bool) -> Execution<Bit, Bit, Bit> {
        let scenario = Scenario::new(3, 1)
            .protocol(|_| Gossip { decision: None })
            .uniform_input(Bit::One);
        let scenario = if faulty {
            scenario.adversary(Adversary::isolation([ProcessId(2)], Round(1)))
        } else {
            scenario
        };
        scenario.run().unwrap()
    }

    #[test]
    fn round_stats_count_traffic() {
        let exec = sample(false);
        let stats = round_stats(&exec);
        assert_eq!(stats[0].delivered, 6);
        assert_eq!(stats[0].send_omitted, 0);
        assert_eq!(stats[0].newly_decided, 3);
    }

    #[test]
    fn round_stats_count_omissions() {
        let exec = sample(true);
        let stats = round_stats(&exec);
        assert_eq!(
            stats[0].receive_omitted, 2,
            "p2 receive-omits from p0 and p1"
        );
        assert_eq!(stats[0].delivered, 4);
    }

    #[test]
    fn render_contains_key_facts() {
        let exec = sample(true);
        let text = render_execution(&exec);
        assert!(text.contains("n = 3, t = 1"));
        assert!(text.contains("faulty: p2"));
        assert!(text.contains("decided"));
        let (slots, distinct) = payload_reuse(&exec);
        assert!(text.contains(&format!(
            "payload slots: {slots} backed by {distinct} distinct payload(s)"
        )));
        assert_eq!(distinct, 1, "uniform gossip interns one payload");
        assert!(slots > distinct);
    }

    #[test]
    fn divergence_frontier_localizes_differences() {
        let clean = sample(false);
        let isolated = sample(true);
        assert_eq!(
            first_inbox_divergence(&clean, &isolated, ProcessId(0)),
            None
        );
        assert_eq!(
            first_inbox_divergence(&clean, &isolated, ProcessId(2)),
            Some(Round(1))
        );
        let text = render_divergence(&clean, &isolated);
        assert!(text.contains("p2: differs from round 1"));
        assert!(text.contains("p0: indistinguishable"));
    }
}
