//! Value and payload marker traits, plus the binary value type [`Bit`].

use std::fmt;
use std::hash::Hash;

/// A value that can be proposed to or decided from an agreement protocol.
///
/// This is a marker trait, blanket-implemented for every type with the
/// required structural capabilities. Weak consensus uses [`Bit`]; interactive
/// consistency uses `Vec<V>`; anything `Clone + Eq + Ord + Hash + Debug`
/// works.
pub trait Value: Clone + Eq + Ord + Hash + fmt::Debug + Send + Sync + 'static {}

impl<T> Value for T where T: Clone + Eq + Ord + Hash + fmt::Debug + Send + Sync + 'static {}

/// A message payload exchanged by a protocol.
///
/// Payload equality is load-bearing: the `merge` construction (paper
/// Algorithm 5) re-runs executions and checks that the exact messages
/// received in the original executions are sent again, by equality.
pub trait Payload: Clone + Eq + Ord + Hash + fmt::Debug + Send + Sync + 'static {}

impl<T> Payload for T where T: Clone + Eq + Ord + Hash + fmt::Debug + Send + Sync + 'static {}

/// A binary value, the proposal/decision domain of weak consensus
/// (paper §3: `V_I = V_O = {0, 1}`).
///
/// ```
/// use ba_sim::Bit;
/// assert_eq!(Bit::Zero.flip(), Bit::One);
/// assert_eq!(Bit::from(true), Bit::One);
/// assert_eq!(u8::from(Bit::One), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Bit {
    /// The bit 0.
    #[default]
    Zero,
    /// The bit 1.
    One,
}

impl Bit {
    /// Both bits, in order `[Zero, One]`.
    pub const ALL: [Bit; 2] = [Bit::Zero, Bit::One];

    /// The complement bit (`1 - b` in the paper's notation).
    pub fn flip(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
        }
    }

    /// `true` iff this is [`Bit::One`].
    pub fn is_one(self) -> bool {
        self == Bit::One
    }
}

impl From<bool> for Bit {
    fn from(b: bool) -> Self {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl From<Bit> for u8 {
    fn from(b: Bit) -> Self {
        match b {
            Bit::Zero => 0,
            Bit::One => 1,
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", u8::from(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involutive() {
        for b in Bit::ALL {
            assert_eq!(b.flip().flip(), b);
            assert_ne!(b.flip(), b);
        }
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Bit::from(false), Bit::Zero);
        assert_eq!(Bit::from(true), Bit::One);
        assert_eq!(u8::from(Bit::Zero), 0);
        assert_eq!(u8::from(Bit::One), 1);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Bit::default(), Bit::Zero);
    }

    #[test]
    fn display_matches_numeric() {
        assert_eq!(Bit::Zero.to_string(), "0");
        assert_eq!(Bit::One.to_string(), "1");
    }

    #[test]
    fn ordering_places_zero_first() {
        assert!(Bit::Zero < Bit::One);
    }
}
