//! Property tests of the plan algebra and the adversary hierarchy:
//! crash ⊊ omission, isolation composition, and fate determinism.

use proptest::prelude::*;

use ba_sim::{
    CrashPlan, DoubleIsolationPlan, Fate, IsolationPlan, OmissionPlan, ProcessId, Round,
};

fn triple() -> impl Strategy<Value = (u64, usize, usize, usize)> {
    // (round, sender, receiver, n) with sender ≠ receiver.
    (1u64..8, 0usize..6, 0usize..6, 6usize..=6).prop_filter("sender != receiver", |(_, s, r, _)| s != r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A crash plan's fates are exactly those of an omission adversary that
    /// send-omits everything from the crash round: crash is expressible in
    /// (hence weaker than) the omission model.
    #[test]
    fn crash_is_an_omission_special_case((round, s, r, _) in triple(), crash_round in 1u64..6) {
        let crashed = ProcessId(0);
        let mut plan = CrashPlan::new([(crashed, Round(crash_round))]);
        let fate = plan.fate(Round(round), ProcessId(s), ProcessId(r), &());
        let expected = if s == 0 && round >= crash_round {
            Fate::SendOmit
        } else if r == 0 && round >= crash_round {
            Fate::ReceiveOmit
        } else {
            Fate::Deliver
        };
        prop_assert_eq!(fate, expected);
        // Blame always lands on the crashed process.
        if let Some(blamed) = fate.blamed(ProcessId(s), ProcessId(r)) {
            prop_assert_eq!(blamed, crashed);
        }
    }

    /// Isolation plans are stateless and deterministic: the same query
    /// always yields the same fate, and the fate matches Definition 1.
    #[test]
    fn isolation_fate_matches_definition((round, s, r, _) in triple(), from in 1u64..6) {
        let group = [ProcessId(4), ProcessId(5)];
        let mut plan = IsolationPlan::new(group, Round(from));
        let f1 = plan.fate(Round(round), ProcessId(s), ProcessId(r), &());
        let f2 = plan.fate(Round(round), ProcessId(s), ProcessId(r), &());
        prop_assert_eq!(f1, f2, "stateless determinism");
        let in_group = |i: usize| i >= 4;
        let expected = if round >= from && in_group(r) && !in_group(s) {
            Fate::ReceiveOmit
        } else {
            Fate::Deliver
        };
        prop_assert_eq!(f1, expected);
    }

    /// Double isolation of disjoint groups equals applying each isolation
    /// independently: no message's fate depends on the other group.
    #[test]
    fn double_isolation_is_componentwise((round, s, r, _) in triple(), kb in 1u64..5, kc in 1u64..5) {
        let b = IsolationPlan::new([ProcessId(4)], Round(kb));
        let c = IsolationPlan::new([ProcessId(5)], Round(kc));
        let mut combined = DoubleIsolationPlan::new(b.clone(), c.clone());
        let (mut b, mut c) = (b, c);
        let combined_fate = combined.fate(Round(round), ProcessId(s), ProcessId(r), &());
        let fb = b.fate(Round(round), ProcessId(s), ProcessId(r), &());
        let fc = c.fate(Round(round), ProcessId(s), ProcessId(r), &());
        let expected = if fb != Fate::Deliver { fb } else { fc };
        prop_assert_eq!(combined_fate, expected);
        // Disjointness means at most one component ever omits.
        prop_assert!(fb == Fate::Deliver || fc == Fate::Deliver);
    }

    /// Fate::blamed is total and correct for the three variants.
    #[test]
    fn blame_assignment((_, s, r, _) in triple()) {
        let (s, r) = (ProcessId(s), ProcessId(r));
        prop_assert_eq!(Fate::Deliver.blamed(s, r), None);
        prop_assert_eq!(Fate::SendOmit.blamed(s, r), Some(s));
        prop_assert_eq!(Fate::ReceiveOmit.blamed(s, r), Some(r));
    }
}
