//! The paper's §4.3 blockchain scenario: validators agree on a block under
//! **External Validity** — the decided block must satisfy a globally
//! verifiable predicate (e.g. "all transactions correctly signed") — and why
//! even this problem costs Ω(t²) messages (Corollary 1).
//!
//! Run with `cargo run -p ba-examples --example blockchain_external_validity`.

use std::collections::BTreeSet;

use ba_core::reduction::{ReductionInputs, WeakFromAgreement};
use ba_core::solvability::solvability;
use ba_core::validity::{ExternalValidity, InputConfig, SystemParams};
use ba_crypto::Keybook;
use ba_examples::banner;
use ba_protocols::interactive_consistency::{authenticated_ic_factory, AuthenticatedIc};
use ba_sim::{
    Adversary, Bit, ExecutorConfig, Inbox, Outbox, ProcessCtx, ProcessId, Protocol, Round,
    Scenario, SilentByzantine,
};

/// A block identifier. Even ids are "correctly signed" (valid); odd ids are
/// forgeries.
type BlockId = u8;

fn valid(block: BlockId) -> bool {
    block % 2 == 0
}

/// Block agreement with External Validity, built the way the paper's §4.3
/// describes real systems: agree on everyone's proposals (interactive
/// consistency), then deterministically pick the first *valid* proposed
/// block — falling back to the well-known empty block `0`.
///
/// The decision always satisfies `valid(·)`; and crucially the protocol has
/// fully correct executions deciding different blocks, which is all
/// Corollary 1 needs.
#[derive(Clone, Debug)]
struct BlockAgreement {
    inner: AuthenticatedIc<BlockId>,
    fallback: BlockId,
}

impl BlockAgreement {
    fn factory(book: Keybook) -> impl Fn(ProcessId) -> BlockAgreement + Clone {
        move |pid| BlockAgreement {
            inner: authenticated_ic_factory(book.clone(), 0)(pid),
            fallback: 0,
        }
    }
}

impl Protocol for BlockAgreement {
    type Input = BlockId;
    type Output = BlockId;
    type Msg = <AuthenticatedIc<BlockId> as Protocol>::Msg;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: BlockId) -> Outbox<Self::Msg> {
        self.inner.propose(ctx, proposal)
    }

    fn round(
        &mut self,
        ctx: &ProcessCtx,
        round: Round,
        inbox: &Inbox<Self::Msg>,
    ) -> Outbox<Self::Msg> {
        self.inner.round(ctx, round, inbox)
    }

    fn decision(&self) -> Option<BlockId> {
        self.inner
            .decision()
            .map(|vec| vec.into_iter().find(|b| valid(*b)).unwrap_or(self.fallback))
    }
}

fn main() {
    let (n, t) = (7, 2);
    let cfg = ExecutorConfig::new(n, t);
    let book = Keybook::new(n);

    print!(
        "{}",
        banner("the validity formalism classifies External Validity as trivial")
    );
    let vp = ExternalValidity::new((0u8..8).collect(), (0u8..8).filter(|b| valid(*b)));
    let report = solvability(&vp, &SystemParams::new(4, 1));
    println!(
        "  solvability oracle: trivial value = {:?} — any fixed valid block is",
        report.trivial_value
    );
    println!("  admissible everywhere (paper §4.3: the formalism cannot see that");
    println!("  validators must first *learn* a block before deciding it).");

    print!(
        "{}",
        banner("block agreement among 7 validators, 2 Byzantine")
    );
    let proposals: Vec<BlockId> = vec![4, 4, 6, 4, 2, 9, 9]; // p5, p6 propose forgeries
    let exec = Scenario::config(&cfg)
        .protocol(BlockAgreement::factory(book.clone()))
        .inputs(proposals.iter().copied())
        .adversary(Adversary::byzantine([
            (ProcessId(5), Box::new(SilentByzantine) as _),
            (ProcessId(6), Box::new(SilentByzantine) as _),
        ]))
        .run()
        .expect("simulation");
    exec.validate().expect("execution guarantees");
    let decided: BTreeSet<_> = exec
        .correct()
        .map(|p| exec.decision_of(p).copied())
        .collect();
    println!("  proposals: {proposals:?} (9 = forged block)");
    println!("  correct validators decided: {decided:?}");
    let block = decided
        .iter()
        .next()
        .copied()
        .flatten()
        .expect("termination");
    assert_eq!(decided.len(), 1, "agreement");
    assert!(valid(block), "external validity");
    println!(
        "  agreement ✓, decided block is valid ✓, messages: {}",
        exec.message_complexity()
    );

    print!(
        "{}",
        banner("Corollary 1: two differing executions ⇒ weak consensus for free")
    );
    let run = |block: BlockId| {
        Scenario::config(&cfg)
            .protocol(BlockAgreement::factory(book.clone()))
            .uniform_input(block)
            .run()
            .expect("simulation")
    };
    let e0 = run(2);
    let e1 = run(6);
    let ids: Vec<ProcessId> = ProcessId::all(n).collect();
    let v0 = e0.unanimous_decision(ids.iter()).expect("agreement");
    let v1 = e1.unanimous_decision(ids.iter()).expect("agreement");
    println!("  all propose block 2 → decide {v0}; all propose block 6 → decide {v1}");
    assert_ne!(v0, v1);

    let inputs = ReductionInputs {
        c0: vec![2; n],
        c1: vec![6; n],
        v0,
        v1,
        c_star: InputConfig::full(vec![6; n]),
    };
    let book2 = book.clone();
    let inputs2 = inputs.clone();
    for bit in Bit::ALL {
        let book2 = book2.clone();
        let inputs2 = inputs2.clone();
        let wrapped = Scenario::config(&cfg)
            .protocol(move |pid| {
                WeakFromAgreement::new(BlockAgreement::factory(book2.clone())(pid), inputs2.clone())
            })
            .uniform_input(bit)
            .run()
            .expect("simulation");
        assert!(wrapped.all_correct_decided(bit));
        println!(
            "  Algorithm 1 wrapper: all propose {bit} → decide {bit} with {} messages \
             (same as the block agreement itself)",
            wrapped.message_complexity()
        );
    }
    println!();
    println!("  The wrapper adds zero messages, so by Theorem 2 the block agreement");
    println!("  protocol inherits the Ω(t²) floor — blockchain agreement is expensive.");
}
