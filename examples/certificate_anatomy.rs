//! Dissecting a violation certificate: run the falsifier, then render the
//! violating execution round by round (traffic, omissions, decisions) and
//! show the indistinguishability frontier that makes the counterexample
//! work.
//!
//! Run with `cargo run --bin certificate_anatomy`.

use ba_core::lowerbound::{
    exhaustive_omission_check, falsify, ExhaustiveConfig, FalsifierConfig, Verdict,
};
use ba_examples::banner;
use ba_protocols::broken::{LeaderEcho, OneRoundAllToAll};
use ba_sim::{render_execution, Bit, ExecutorConfig, ProcessId};

fn main() {
    let (n, t) = (8, 4);

    print!(
        "{}",
        banner("a falsifier certificate, dissected (LeaderEcho, n = 8, t = 4)")
    );
    let cfg = FalsifierConfig::new(n, t);
    let verdict = falsify(&cfg, |_| LeaderEcho::new(ProcessId(0))).expect("falsifier run");
    let Verdict::Violation(cert) = verdict else {
        panic!("LeaderEcho must be refuted");
    };
    cert.verify().expect("certificate verification");
    println!("violation: {}\n", cert.kind);
    println!("derivation:");
    for step in &cert.provenance {
        println!("  - {step}");
    }
    println!("\nthe violating execution, round by round:\n");
    print!("{}", render_execution(&cert.execution));

    print!(
        "{}",
        banner("the minimal adversary, by exhaustive enumeration")
    );
    println!("OneRoundAllToAll at n = 4, t = 1: enumerate EVERY send-omission pattern");
    println!("of one corrupted process and report the smallest that splits the");
    println!("correct processes:\n");
    let ecfg = ExecutorConfig::new(4, 1);
    let outcome = exhaustive_omission_check(
        &ecfg,
        |_| OneRoundAllToAll::new(),
        &[Bit::Zero; 4],
        ProcessId(3),
        &ExhaustiveConfig::new(1).send_only(),
    )
    .expect("exhaustive check");
    let cert = outcome.certificate().expect("violation must exist");
    cert.verify().expect("certificate verification");
    println!("{}", cert.kind);
    for step in &cert.provenance {
        println!("  - {step}");
    }
    print!("\n{}", render_execution(&cert.execution));
    println!("\nA single send-omission suffices — weak consensus really is fragile,");
    println!("and any protocol that fixes this pays the Ω(t²) price (Theorem 2).");
}
