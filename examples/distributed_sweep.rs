//! Distributed campaign sharding, end to end: plan a mixed-adversary grid,
//! fan it out over `campaign_worker` processes, and verify the merged
//! report is bit-identical to the single-process sweep.
//!
//! ```text
//! cargo build -p ba-bench --bin campaign_worker   # the worker
//! cargo run -p ba-examples --example distributed_sweep [SHARDS] [--progress FILE]
//! ```
//!
//! The worker binary is located automatically (next to this example's own
//! executable under `target/`), or explicitly via `$CAMPAIGN_WORKER`.
//!
//! With `--progress FILE`, workers run with `--progress` and the
//! coordinator's observer appends every streamed [`ba_dist::CoordEvent`] to
//! FILE as JSONL — the capture `campaign_watch --once` summarizes and CI
//! uploads as an artifact. Telemetry is observation-only: the merged report
//! is bit-identical with or without it.

use std::io::Write as _;
use std::sync::Mutex;

use ba_bench::dist::scenario_campaign_report;
use ba_dist::{plan_shards, Coordinator, SweepSpec, WorkerCommand};
use ba_examples::banner;
use ba_sim::Campaign;

fn main() {
    let mut shards: usize = 2;
    let mut progress_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--progress" => {
                progress_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--progress needs a file path");
                    std::process::exit(1);
                }));
            }
            other => match other.parse() {
                Ok(count) => shards = count,
                Err(_) => {
                    eprintln!("unknown argument {other:?}");
                    eprintln!("usage: distributed_sweep [SHARDS] [--progress FILE]");
                    std::process::exit(1);
                }
            },
        }
    }

    print!("{}", banner("Distributed campaign sharding"));
    let Some(worker) = WorkerCommand::locate() else {
        eprintln!("no campaign_worker binary found.");
        eprintln!("build it first:  cargo build -p ba-bench --bin campaign_worker");
        eprintln!("(or point $CAMPAIGN_WORKER at one)");
        std::process::exit(1);
    };
    println!("worker: {}", worker.program().display());

    // A mixed-adversary grid: four (n, t) sizes × four adversaries × two
    // input profiles, one seeded per point.
    let grid = Campaign::grid(
        [(6, 1), (8, 2), (10, 2), (12, 4)],
        &["none", "isolation", "crash", "random-omission"],
        &["ones", "random"],
    );
    let points = grid.points().to_vec();
    let spec = SweepSpec::scenarios(points.clone(), "dolev-strong").base_seed(0xD15C);

    println!(
        "grid: {} points, split into {} shard(s):",
        points.len(),
        shards
    );
    for manifest in plan_shards(&spec, shards) {
        let first = manifest.entries.first().expect("non-empty shard");
        let last = manifest.entries.last().expect("non-empty shard");
        println!(
            "  shard {}: {} points (grid indices {}..={})",
            manifest.shard,
            manifest.entries.len(),
            first.index,
            last.index
        );
    }

    // Fan out: one worker process per shard, reports streamed back and
    // merged in grid order. With --progress, per-point telemetry from the
    // workers is captured as JSONL on the side.
    let coordinator = match &progress_path {
        Some(path) => {
            let file = Mutex::new(std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("creating {path}: {e}");
                std::process::exit(1);
            }));
            println!("streaming progress JSONL to {path}");
            Coordinator::new(worker.with_progress(true), shards).on_event(move |event| {
                let mut file = file.lock().expect("progress file lock");
                let _ = writeln!(file, "{}", event.to_json_line());
            })
        }
        None => Coordinator::new(worker, shards),
    };
    let report = coordinator.run_campaign(&spec).expect("distributed sweep");

    print!("{}", banner("Merged report (grid order)"));
    print!("{}", report.summary());

    // The whole point: merge(k shards) == run(1 process), bit for bit.
    let reference =
        scenario_campaign_report(&points, "dolev-strong", 0xD15C, 0).expect("in-process sweep");
    assert_eq!(report, reference);
    println!(
        "\n{} worker shard(s) reproduced the in-process sweep exactly: \
         {} points, {} correct-process messages ✓",
        shards,
        report.outcomes.len(),
        report.total_message_complexity()
    );
}
