//! Distributed campaign sharding, end to end: plan a mixed-adversary grid,
//! fan it out over `campaign_worker` processes, and verify the merged
//! report is bit-identical to the single-process sweep.
//!
//! ```text
//! cargo build -p ba-bench --bin campaign_worker   # the worker
//! cargo run -p ba-examples --example distributed_sweep [SHARDS] \
//!     [--progress FILE] [--chaos SEED] [--partial FILE]
//! ```
//!
//! The worker binary is located automatically (next to this example's own
//! executable under `target/`), or explicitly via `$CAMPAIGN_WORKER`.
//!
//! With `--progress FILE`, workers run with `--progress` and the
//! coordinator's observer appends every streamed [`ba_dist::CoordEvent`] to
//! FILE as JSONL — the capture `campaign_watch --once` summarizes and CI
//! uploads as an artifact. Telemetry is observation-only: the merged report
//! is bit-identical with or without it.
//!
//! With `--chaos SEED`, the worker transport is wrapped in a deterministic
//! [`ba_dist::ChaosTransport`] injecting seeded crashes, stalls, truncated
//! and corrupted streams, and connection drops — a *recoverable* schedule
//! (faults relent after two attempts per shard). The point-level recovery
//! fabric (streamed outcome harvest, watchdog, work-stealing re-plan) must
//! still reproduce the in-process report bit-for-bit; the example exits
//! non-zero if it does not. This is the CI chaos smoke.
//!
//! With `--partial FILE`, an *unrecoverable* chaos schedule (every attempt
//! faulted) exhausts the retry budget instead, and the typed
//! [`ba_dist::PartialReport`] — merged survivors plus the coverage map of
//! missing points — is written to FILE as JSON.

use std::io::Write as _;
use std::sync::Mutex;
use std::time::Duration;

use ba_bench::dist::scenario_campaign_report;
use ba_dist::{
    plan_shards, Backoff, ChaosPlan, ChaosTransport, Coordinator, SweepSpec, WorkerCommand,
};
use ba_examples::banner;
use ba_sim::Campaign;

fn main() {
    let mut shards: usize = 2;
    let mut progress_path: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut partial_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--progress" => {
                progress_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--progress needs a file path");
                    std::process::exit(1);
                }));
            }
            "--chaos" => {
                let seed = args.next().unwrap_or_else(|| {
                    eprintln!("--chaos needs a seed");
                    std::process::exit(1);
                });
                chaos_seed = Some(seed.parse().unwrap_or_else(|_| {
                    eprintln!("bad --chaos seed {seed:?}");
                    std::process::exit(1);
                }));
            }
            "--partial" => {
                partial_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--partial needs a file path");
                    std::process::exit(1);
                }));
            }
            other => match other.parse() {
                Ok(count) => shards = count,
                Err(_) => {
                    eprintln!("unknown argument {other:?}");
                    eprintln!(
                        "usage: distributed_sweep [SHARDS] [--progress FILE] \
                         [--chaos SEED] [--partial FILE]"
                    );
                    std::process::exit(1);
                }
            },
        }
    }

    print!("{}", banner("Distributed campaign sharding"));
    let worker = WorkerCommand::locate_checked().unwrap_or_else(|e| {
        eprintln!("{e}");
        eprintln!("build it first:  cargo build -p ba-bench --bin campaign_worker");
        eprintln!("(or point $CAMPAIGN_WORKER at one)");
        std::process::exit(1);
    });
    println!("worker: {}", worker.program().display());

    // A mixed-adversary grid: four (n, t) sizes × four adversaries × two
    // input profiles, one seeded per point.
    let grid = Campaign::grid(
        [(6, 1), (8, 2), (10, 2), (12, 4)],
        &["none", "isolation", "crash", "random-omission"],
        &["ones", "random"],
    );
    let points = grid.points().to_vec();
    let spec = SweepSpec::scenarios(points.clone(), "dolev-strong").base_seed(0xD15C);

    println!(
        "grid: {} points, split into {} shard(s):",
        points.len(),
        shards
    );
    for manifest in plan_shards(&spec, shards) {
        let first = manifest.entries.first().expect("non-empty shard");
        let last = manifest.entries.last().expect("non-empty shard");
        println!(
            "  shard {}: {} points (grid indices {}..={})",
            manifest.shard,
            manifest.entries.len(),
            first.index,
            last.index
        );
    }

    let reference =
        scenario_campaign_report(&points, "dolev-strong", 0xD15C, 0).expect("in-process sweep");

    // Budget-exhaustion demo: every attempt faulted, so the sweep degrades
    // to a typed PartialReport instead of failing outright.
    if let Some(path) = &partial_path {
        let seed = chaos_seed.unwrap_or(0xBAD);
        println!("\nunrecoverable chaos (seed {seed}): expecting partial coverage");
        let chaos = ChaosTransport::new(
            worker.clone().with_stream(true).with_progress(true),
            ChaosPlan::unrecoverable(seed),
        );
        let partial = Coordinator::new(chaos, shards)
            .retries(1)
            .backoff(Backoff::none())
            .watchdog(Duration::from_secs(2))
            .run_campaign_partial(&spec);
        println!("{}", partial.coverage_summary());
        std::fs::write(path, partial.coverage_json()).unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("partial report JSON written to {path}");
        let (covered, grid_len) = (
            partial.covered.outcomes.len() + partial.missing.len(),
            points.len(),
        );
        assert_eq!(covered, grid_len, "coverage map must partition the grid");
        return;
    }

    // Fan out: one worker process per shard, reports streamed back and
    // merged in grid order. With --progress, per-point telemetry from the
    // workers is captured as JSONL on the side. With --chaos, the transport
    // injects recoverable seeded faults the fabric must absorb.
    let observer = progress_path.as_ref().map(|path| {
        let file = Mutex::new(std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("creating {path}: {e}");
            std::process::exit(1);
        }));
        println!("streaming progress JSONL to {path}");
        move |event: &ba_dist::CoordEvent| {
            let mut file = file.lock().expect("progress file lock");
            let _ = writeln!(file, "{}", event.to_json_line());
        }
    });

    let report = match chaos_seed {
        Some(seed) => {
            println!("\nrecoverable chaos (seed {seed}): fabric must absorb every fault");
            let chaos = ChaosTransport::new(
                worker.with_stream(true).with_progress(true),
                ChaosPlan::new(seed),
            );
            let mut coordinator = Coordinator::new(chaos, shards)
                .retries(4)
                .backoff(Backoff {
                    base: Duration::from_millis(5),
                    max: Duration::from_millis(50),
                    jitter: 0.5,
                    seed,
                })
                .watchdog(Duration::from_secs(2));
            if let Some(observer) = observer {
                coordinator = coordinator.on_event(observer);
            }
            coordinator.run_campaign(&spec).expect("chaos sweep")
        }
        None => {
            let worker = if progress_path.is_some() {
                worker.with_progress(true)
            } else {
                worker
            };
            let mut coordinator = Coordinator::new(worker, shards);
            if let Some(observer) = observer {
                coordinator = coordinator.on_event(observer);
            }
            coordinator.run_campaign(&spec).expect("distributed sweep")
        }
    };

    print!("{}", banner("Merged report (grid order)"));
    print!("{}", report.summary());

    // The whole point: merge(k shards) == run(1 process), bit for bit —
    // chaos or no chaos.
    assert_eq!(report, reference);
    println!(
        "\n{} worker shard(s) reproduced the in-process sweep exactly: \
         {} points, {} correct-process messages ✓",
        shards,
        report.outcomes.len(),
        report.total_message_complexity()
    );
}
