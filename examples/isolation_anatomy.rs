//! Figure 1, reproduced (EXP-F1): how isolating a group at round R changes
//! behavior — the isolated group's *sends* may first deviate in round R+1,
//! and the rest of the system only from round R+2, by propagation.
//!
//! Run with `cargo run --bin isolation_anatomy`.

use ba_core::lowerbound::{FamilyRunner, Partition};
use ba_examples::banner;
use ba_protocols::broken::ParanoidEcho;
use ba_sim::{Bit, ExecutorConfig, ProcessId, Round};

fn main() {
    let (n, t) = (8, 2);
    let partition = Partition::paper_default(n, t);
    let cfg = ExecutorConfig::new(n, t)
        .with_stop_when_quiescent(false)
        .with_max_rounds(8);
    let factory = |_| ParanoidEcho::new();
    let runner = FamilyRunner::new(cfg, &factory, partition.clone());

    print!(
        "{}",
        banner("Figure 1: isolation anatomy (ParanoidEcho, n = 8, t = 2)")
    );
    let names = |g: &std::collections::BTreeSet<ProcessId>| {
        g.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!(
        "  groups: A = {{{}}}, B = {{{}}}, C = {{{}}}\n",
        names(partition.a()),
        names(partition.b()),
        names(partition.c())
    );

    let e0 = runner.e0::<ParanoidEcho>(Bit::Zero).expect("simulation");
    println!(
        "  E0 (fault-free, all propose 0): everyone decides 0 by round {}\n",
        e0.all_decided_by().expect("all decide").0
    );

    for r in [1u64, 2] {
        let eb = runner
            .isolated_b::<ParanoidEcho>(Round(r), Bit::Zero)
            .expect("simulation");
        println!("  E_B({r})_0 — group B isolated from round {r}:");
        println!("    per-process first round whose *sent* messages differ from E0:");
        for pid in ProcessId::all(n) {
            let group = if partition.b().contains(&pid) {
                "B"
            } else if partition.c().contains(&pid) {
                "C"
            } else {
                "A"
            };
            match e0.first_send_divergence(&eb, pid) {
                Some(round) => println!("      {pid} ({group}): diverges in round {}", round.0),
                None => println!("      {pid} ({group}): identical to E0 (green throughout)"),
            }
        }
        let a_decision = eb.unanimous_decision(partition.a().iter());
        let b_decision = eb.unanimous_decision(partition.b().iter());
        println!(
            "    decisions: A → {:?}, B → {:?}",
            a_decision.map(|b| b.to_string()),
            b_decision.map(|b| b.to_string())
        );
        println!(
            "    (B's deviation starts at R+1 = {}, the outside world reacts from R+2 = {})\n",
            r + 1,
            r + 2
        );
    }

    println!("  Reading: isolation is invisible in the round it starts (the group only");
    println!("  *receive-omits*), shows in the group's behavior one round later, and");
    println!("  propagates to the rest of the system a round after that — the green /");
    println!("  red / blue bands of the paper's Figure 1.");
}
