//! Shared pretty-printing helpers for the runnable examples.

use ba_sim::{Execution, Payload, Value};

/// Renders a one-line summary of each process's proposal → decision.
pub fn decision_table<I, O, M>(exec: &Execution<I, O, M>) -> String
where
    I: Value + std::fmt::Display,
    O: Value + std::fmt::Display,
    M: Payload,
{
    let mut out = String::new();
    for pid in ba_sim::ProcessId::all(exec.n) {
        let rec = exec.record(pid);
        let role = if exec.is_correct(pid) {
            "correct"
        } else {
            "faulty "
        };
        let decision = match &rec.decision {
            Some((v, r)) => format!("decided {v} (at start of round {})", r.0),
            None => "undecided".to_string(),
        };
        out.push_str(&format!(
            "  {pid:>4} [{role}] proposed {} → {decision}\n",
            rec.proposal
        ));
    }
    out
}

/// Renders a header line for example sections.
pub fn banner(title: &str) -> String {
    format!(
        "\n=== {title} {}\n",
        "=".repeat(66usize.saturating_sub(title.len()))
    )
}
