//! The Ω(t²) lower bound, run forward (EXP-T2 / EXP-F2).
//!
//! For each claimed weak-consensus protocol, the falsifier executes the
//! Theorem 2 proof: sub-quadratic protocols are refuted with a concrete,
//! verified counterexample execution; quadratic ones survive, with the
//! observed message complexity printed against the paper's `t²/32` floor.
//!
//! Run with `cargo run --bin lower_bound_falsifier`.

use ba_core::lowerbound::{falsify, FalsifierConfig, Verdict};
use ba_crypto::Keybook;
use ba_examples::banner;
use ba_protocols::broken::{LeaderEcho, OneRoundAllToAll, OwnProposal, SilentConstant};
use ba_protocols::DolevStrong;
use ba_sim::{Bit, Payload, ProcessId, Protocol};

fn report<P, F>(name: &str, cfg: &FalsifierConfig, factory: F)
where
    P: Protocol<Input = Bit, Output = Bit>,
    P::Msg: Payload,
    F: Fn(ProcessId) -> P + Sync,
{
    print!("{}", banner(name));
    match falsify(cfg, factory).expect("falsifier run") {
        Verdict::Violation(cert) => {
            cert.verify().expect("certificate verification");
            println!("  REFUTED: {}", cert.kind);
            println!(
                "  violating execution: {} faulty of n = {} (t = {}), {} messages total",
                cert.execution.faulty.len(),
                cert.execution.n,
                cert.execution.t,
                cert.execution.total_messages()
            );
            println!("  derivation:");
            for step in &cert.provenance {
                println!("    - {step}");
            }
            println!("  certificate independently re-verified ✓");
        }
        Verdict::Survived(r) => {
            println!(
                "  SURVIVED the full Theorem 2 argument ({} executions explored)",
                r.executions_explored
            );
            println!(
                "  max observed message complexity: {} (paper floor t²/32 = {})",
                r.max_message_complexity, r.paper_bound
            );
            for note in &r.notes {
                println!("    note: {note}");
            }
        }
    }
}

fn main() {
    let (n, t) = (16, 8);
    println!(
        "system: n = {n}, t = {t}; partition |B| = |C| = {}",
        (t / 4).max(1)
    );
    let cfg = FalsifierConfig::new(n, t);

    report("SilentConstant(1) — 0 messages", &cfg, |_| {
        SilentConstant::new(Bit::One)
    });
    report("OwnProposal — 0 messages", &cfg, |_| OwnProposal::new());
    report("LeaderEcho — 2(n−1) messages", &cfg, |_| {
        LeaderEcho::new(ProcessId(0))
    });
    report("OneRoundAllToAll — n(n−1) messages", &cfg, |_| {
        OneRoundAllToAll::new()
    });
    let book = Keybook::new(n);
    report(
        "Dolev-Strong weak consensus — Θ(n²) messages (correct)",
        &cfg,
        DolevStrong::factory(book, ProcessId(0), Bit::Zero),
    );

    println!();
    println!("Every sub-quadratic protocol above is refuted with a concrete execution;");
    println!("the protocols that survive are exactly the ones whose message complexity");
    println!("clears the paper's Ω(t²) floor — Theorem 2, reproduced.");
}
