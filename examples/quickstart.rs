//! Quickstart: weak consensus with the canonical quadratic algorithm
//! (Dolev-Strong broadcast of `p_0`'s proposal) — fault-free, under a
//! Byzantine equivocating sender, and swept over a grid by a `Campaign`.
//!
//! Run with `cargo run -p ba-examples --example quickstart`.

use ba_crypto::Keybook;
use ba_examples::{banner, decision_table};
use ba_protocols::attacks::TwoFacedSender;
use ba_protocols::DolevStrong;
use ba_sim::{Adversary, Bit, Campaign, ProcessId, Scenario};

fn main() {
    let (n, t) = (7, 2);
    let book = Keybook::new(n);
    let sender = ProcessId(0);

    print!(
        "{}",
        banner("weak consensus via Dolev-Strong: fault-free, all propose 1")
    );
    let exec = Scenario::new(n, t)
        .protocol(DolevStrong::factory(book.clone(), sender, Bit::Zero))
        .uniform_input(Bit::One)
        .run()
        .expect("simulation");
    exec.validate().expect("execution guarantees");
    print!("{}", decision_table(&exec));
    println!(
        "  message complexity: {} (t²/32 floor: {})",
        exec.message_complexity(),
        (t * t) / 32
    );
    assert!(exec.all_correct_decided(Bit::One), "weak validity");

    print!(
        "{}",
        banner("same protocol under an equivocating Byzantine sender")
    );
    let exec = Scenario::new(n, t)
        .protocol(DolevStrong::factory(book.clone(), sender, Bit::Zero))
        .uniform_input(Bit::One)
        .adversary(Adversary::one_byzantine(
            sender,
            TwoFacedSender::new(book.keychain(sender), Bit::Zero, Bit::One),
        ))
        .run()
        .expect("simulation");
    exec.validate().expect("execution guarantees");
    print!("{}", decision_table(&exec));
    println!("  the equivocation is detected: every correct process falls back to the default 0,");
    println!("  preserving Agreement — at quadratic message cost, as Theorem 2 demands.");

    print!(
        "{}",
        banner("a Campaign sweep: message complexity across (n, t) in parallel")
    );
    let report = Campaign::grid([(4, 1), (7, 2), (10, 3), (13, 4)], &["none"], &["ones"])
        .run_scenarios(|point| {
            Scenario::new(point.n, point.t)
                .protocol(DolevStrong::factory(
                    Keybook::new(point.n),
                    ProcessId(0),
                    Bit::Zero,
                ))
                .uniform_input(Bit::One)
        });
    print!("{}", report.summary());
    assert!(
        report.all_clean(),
        "Dolev-Strong must be clean at every grid point"
    );
    println!("  every point decided, agreed, and validated — message cost grows as O(n²).");
}
