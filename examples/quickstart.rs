//! Quickstart: weak consensus with the canonical quadratic algorithm
//! (Dolev-Strong broadcast of `p_0`'s proposal), fault-free and under a
//! Byzantine equivocating sender.
//!
//! Run with `cargo run --bin quickstart`.

use std::collections::{BTreeMap, BTreeSet};

use ba_crypto::Keybook;
use ba_examples::{banner, decision_table};
use ba_protocols::attacks::TwoFacedSender;
use ba_protocols::DolevStrong;
use ba_sim::{
    run_byzantine, run_omission, Bit, ByzantineBehavior, ExecutorConfig, NoFaults, ProcessId,
};

fn main() {
    let (n, t) = (7, 2);
    let cfg = ExecutorConfig::new(n, t);
    let book = Keybook::new(n);
    let sender = ProcessId(0);

    print!("{}", banner("weak consensus via Dolev-Strong: fault-free, all propose 1"));
    let exec = run_omission(
        &cfg,
        DolevStrong::factory(book.clone(), sender, Bit::Zero),
        &vec![Bit::One; n],
        &BTreeSet::new(),
        &mut NoFaults,
    )
    .expect("simulation");
    exec.validate().expect("execution guarantees");
    print!("{}", decision_table(&exec));
    println!(
        "  message complexity: {} (t²/32 floor: {})",
        exec.message_complexity(),
        (t * t) / 32
    );
    assert!(exec.all_correct_decided(Bit::One), "weak validity");

    print!("{}", banner("same protocol under an equivocating Byzantine sender"));
    let behaviors: BTreeMap<ProcessId, Box<dyn ByzantineBehavior<Bit, _>>> = [(
        sender,
        Box::new(TwoFacedSender::new(book.keychain(sender), Bit::Zero, Bit::One)) as Box<_>,
    )]
    .into_iter()
    .collect();
    let exec = run_byzantine(
        &cfg,
        DolevStrong::factory(book, sender, Bit::Zero),
        &vec![Bit::One; n],
        behaviors,
    )
    .expect("simulation");
    exec.validate().expect("execution guarantees");
    print!("{}", decision_table(&exec));
    println!("  the equivocation is detected: every correct process falls back to the default 0,");
    println!("  preserving Agreement — at quadratic message cost, as Theorem 2 demands.");
}
