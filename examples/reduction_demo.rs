//! Algorithm 1 and Corollary 1 (EXP-TAB2 / EXP-T3 / EXP-C1): weak consensus
//! from any non-trivial agreement problem, at zero message cost.
//!
//! Run with `cargo run -p ba-examples --example reduction_demo`.

use ba_core::reduction::{derive_reduction_inputs, WeakFromAgreement};
use ba_core::validity::{SenderValidity, StrongValidity};
use ba_crypto::Keybook;
use ba_examples::banner;
use ba_protocols::{DolevStrong, PhaseKing};
use ba_sim::{Bit, ExecutorConfig, ProcessId, Scenario};

fn main() {
    let (n, t) = (7, 2);
    let cfg = ExecutorConfig::new(n, t);

    print!(
        "{}",
        banner("Table 2: reduction inputs for strong consensus (Phase King)")
    );
    let inputs = derive_reduction_inputs(&cfg, |_| PhaseKing::new(n, t), &StrongValidity::binary())
        .expect("strong consensus is non-trivial");
    println!("  c0 = {:?}", inputs.c0);
    println!(
        "  v'0 = {} (decided in the fully correct execution E0 on c0)",
        inputs.v0
    );
    println!("  c*1 = {} (v'0 is inadmissible here)", inputs.c_star);
    println!("  c1 = {:?} (a fully correct extension of c*1)", inputs.c1);
    println!("  v'1 = {} ≠ v'0 — Lemma 17 holds", inputs.v1);

    print!(
        "{}",
        banner("Algorithm 1: the wrapped protocol solves weak consensus")
    );
    for bit in Bit::ALL {
        let wrapped = Scenario::config(&cfg)
            .protocol(|_| WeakFromAgreement::new(PhaseKing::new(n, t), inputs.clone()))
            .uniform_input(bit)
            .run()
            .expect("simulation");
        let bare_proposals = if bit == Bit::Zero {
            &inputs.c0
        } else {
            &inputs.c1
        };
        let bare = Scenario::config(&cfg)
            .protocol(|_| PhaseKing::new(n, t))
            .inputs(bare_proposals.iter().copied())
            .run()
            .expect("simulation");
        println!(
            "  all propose {bit}: wrapped decides {bit} with {} messages; bare Phase King on the \
             corresponding configuration: {} messages (identical — zero-cost reduction)",
            wrapped.message_complexity(),
            bare.message_complexity()
        );
        assert!(wrapped.all_correct_decided(bit));
        assert_eq!(wrapped.message_complexity(), bare.message_complexity());
    }

    print!(
        "{}",
        banner("the same wrapper over Byzantine broadcast (Dolev-Strong)")
    );
    let book = Keybook::new(n);
    let vp = SenderValidity::new(ProcessId(0), vec![Bit::Zero, Bit::One]);
    let inputs = derive_reduction_inputs(
        &cfg,
        DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
        &vp,
    )
    .expect("broadcast is non-trivial");
    println!(
        "  v'0 = {}, v'1 = {} — broadcast also yields weak consensus",
        inputs.v0, inputs.v1
    );
    for bit in Bit::ALL {
        let book = book.clone();
        let inputs_c = inputs.clone();
        let exec = Scenario::config(&cfg)
            .protocol(move |pid| {
                WeakFromAgreement::new(
                    DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero)(pid),
                    inputs_c.clone(),
                )
            })
            .uniform_input(bit)
            .run()
            .expect("simulation");
        assert!(exec.all_correct_decided(bit));
        println!("  all propose {bit}: decided {bit} ✓");
    }

    print!("{}", banner("Corollary 1: External Validity"));
    println!("  An external-validity algorithm with two fully correct executions deciding");
    println!("  different values supplies (c0, v'0, c1, v'1) directly — no validity");
    println!("  enumeration needed — so the Ω(t²) bound covers blockchain-style agreement");
    println!("  too. (Exercised in tests/reduction_chains.rs::corollary_1_shape_*.)");
    println!();
    println!("  Consequence (Theorem 3): a sub-quadratic solution to ANY non-trivial");
    println!("  agreement problem would yield sub-quadratic weak consensus via this");
    println!("  zero-cost wrapper, contradicting Theorem 2.");
}
