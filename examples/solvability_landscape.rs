//! The general solvability theorem as a landscape table (EXP-T4 / EXP-T5).
//!
//! For every validity property in the catalog and a grid of `(n, t)`, print
//! triviality, the containment condition, and the Theorem 4 verdicts; for
//! unsolvable cells, print the CC witness in the shape of the paper's
//! Theorem 5 proof.
//!
//! Run with `cargo run --bin solvability_landscape`.

use ba_core::solvability::{solvability, CcResult};
use ba_core::validity::{
    AnythingGoes, ExternalValidity, IntervalValidity, MajorityValidity, SenderValidity,
    StrongValidity, SystemParams, UnanimityOrDefault, ValidityProperty, WeakValidity,
};
use ba_examples::banner;
use ba_sim::{Bit, ProcessId, Value};

fn row<VP>(vp: &VP, n: usize, t: usize)
where
    VP: ValidityProperty,
    VP::Output: std::fmt::Debug,
    VP::Input: Value + std::fmt::Display,
{
    let params = SystemParams::new(n, t);
    let report = solvability(vp, &params);
    let trivial = match &report.trivial_value {
        Some(v) => format!("trivial({v:?})"),
        None => "non-trivial".into(),
    };
    let cc = if report.cc.holds() {
        "CC ✓"
    } else {
        "CC ✗"
    };
    println!(
        "  {:<24} n={n:<2} t={t:<2} {:<14} {:<5} auth={:<5} unauth={}",
        vp.name(),
        trivial,
        cc,
        report.authenticated_solvable,
        report.unauthenticated_solvable,
    );
    if let CcResult::Violated(witness) = &report.cc {
        println!("      witness: c = {}", witness.config);
        if let Some((a, b)) = &witness.disjoint_pair {
            println!("      contains {a} and {b} with disjoint admissible sets");
        }
    }
}

fn main() {
    print!("{}", banner("Theorem 4: the solvability landscape"));
    println!(
        "  problem                  params  triviality     CC    authenticated / unauthenticated\n"
    );

    for (n, t) in [(4usize, 1usize), (5, 2), (4, 2), (6, 2), (7, 2), (6, 3)] {
        row(&WeakValidity::binary(), n, t);
        row(&StrongValidity::binary(), n, t);
        row(
            &SenderValidity::new(ProcessId(0), vec![Bit::Zero, Bit::One]),
            n,
            t,
        );
        row(&MajorityValidity::new(), n, t);
        row(&UnanimityOrDefault::new(Bit::Zero), n, t);
        row(&IntervalValidity::new(3), n, t);
        row(&ExternalValidity::new(vec![0u8, 1, 2, 3], [1u8, 3]), n, t);
        row(&AnythingGoes::new(), n, t);
        println!();
    }

    print!("{}", banner("Theorem 5: strong consensus needs n > 2t"));
    for (n, t) in [(3usize, 1usize), (4, 2), (5, 2), (6, 3), (7, 3)] {
        row(&StrongValidity::binary(), n, t);
    }
    println!("\n  CC fails exactly when n ≤ 2t, via the paper's witness: a balanced");
    println!("  configuration containing two disjoint unanimous sub-configurations.");

    print!("{}", banner("notes"));
    println!("  * external-validity is classified trivial by the §4.1 formalism (paper §4.3);");
    println!("    its Ω(t²) bound is recovered through Corollary 1 — see `reduction_demo`.");
    println!("  * unauthenticated solvability additionally requires n > 3t (Lemma 10 /");
    println!("    Fischer-Lynch-Merritt), visible in the n = 6, t = 2 rows.");
}
