//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/*.rs`; this library hosts small utilities
//! they share (decision summaries, certificate assertions).

use std::collections::BTreeSet;

use ba_core::lowerbound::Certificate;
use ba_sim::{Bit, Execution, Payload, ProcessId, Value};

/// The set of distinct decisions reached by correct processes.
pub fn correct_decisions<I: Value, O: Value, M: Payload>(
    exec: &Execution<I, O, M>,
) -> BTreeSet<Option<O>> {
    exec.correct()
        .map(|p| exec.decision_of(p).cloned())
        .collect()
}

/// Asserts that an execution satisfies Termination and Agreement among
/// correct processes and returns the common decision.
///
/// # Panics
///
/// Panics (with context) if either property is violated.
pub fn assert_agreement<I: Value, O: Value, M: Payload>(exec: &Execution<I, O, M>) -> O {
    let decisions = correct_decisions(exec);
    assert_eq!(
        decisions.len(),
        1,
        "correct processes disagree: {decisions:?}"
    );
    decisions
        .into_iter()
        .next()
        .unwrap()
        .expect("a correct process never decided")
}

/// Asserts a certificate is internally verifiable and names an omission-only
/// execution within the fault budget.
///
/// # Panics
///
/// Panics if verification fails.
pub fn assert_certificate<M: Payload>(cert: &Certificate<M>) {
    cert.verify().unwrap_or_else(|e| {
        panic!(
            "certificate failed verification: {e}\nprovenance: {:#?}",
            cert.provenance
        )
    });
    assert!(cert.execution.faulty.len() <= cert.execution.t);
}

/// All-same proposals helper.
pub fn uniform(n: usize, bit: Bit) -> Vec<Bit> {
    vec![bit; n]
}

/// A process id shorthand.
pub fn pid(i: usize) -> ProcessId {
    ProcessId(i)
}
