//! End-to-end regressions for the `ba-search` adversary-strategy search:
//! the pipeline must *rediscover* known attacks from scratch — a planted
//! agreement bug in `broken.rs`, and the king-silencing pattern against a
//! Phase King weakened below `t + 1` phases — deterministically, within
//! the default budget, and the shrunk attack reports must replay to the
//! same violations.

use ba_bench::search::{replay_report, run_adversary_search, SearchSpec};
use ba_protocols::PhaseKing;
use ba_search::{evaluate_genome, StrategyGenome, TargetSel};
use ba_sim::Bit;

/// `TargetSel` resolution at round 1 (before anyone has sent): fixed
/// targets reduce mod `n`, and top-sender ranks tie-break to identity
/// order, so rank `r` is process `r mod n`.
fn resolves_to_process_zero(sel: TargetSel, n: usize) -> bool {
    match sel {
        TargetSel::Fixed(idx) => idx % n == 0,
        TargetSel::TopSender(rank) => rank % n == 0,
    }
}

#[test]
fn search_rediscovers_the_planted_one_round_all_to_all_violation() {
    // The exact job CI smokes: default spec, default seed and budget.
    let spec = SearchSpec::new("one-round-all-to-all", 5, 1);
    let run = run_adversary_search(&spec).expect("labels are known");
    assert!(
        run.outcome.violation,
        "the planted agreement bug must be found within {} evals (best score {})",
        spec.config.max_evals, run.outcome.best_score
    );
    let report = run.report.expect("violations produce a report");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.contains("agreement violated")),
        "expected an agreement violation, got {:?}",
        report.violations
    );
    // The shrinker strips the strategy to its 1-minimal core: one
    // corruption, one gene.
    assert_eq!(report.genome.genes.len(), 1, "minimal attack is one gene");
    assert_eq!(report.genome.budget, 1);

    // The report replays to the same violation through the genome
    // interpreter.
    let replayed = replay_report(&report).expect("report labels are known");
    assert_eq!(replayed.violations, report.violations);
}

#[test]
fn search_finds_a_king_silencer_on_weakened_phase_king() {
    // Phase King cut to a single phase (< t + 1): the only king is p0, and
    // the only way to split the correct processes on majority-one inputs
    // is to corrupt that king and hide its traffic from some receivers.
    let mut spec = SearchSpec::new("phase-king-weak", 5, 1);
    spec.inputs = "majority-one".to_string();
    let run = run_adversary_search(&spec).expect("labels are known");
    assert!(
        run.outcome.violation,
        "the king-silencing attack must be found within {} evals (best score {})",
        spec.config.max_evals, run.outcome.best_score
    );
    let report = run.report.expect("violations produce a report");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.contains("agreement violated")),
        "expected an agreement violation, got {:?}",
        report.violations
    );
    // KingSilencer-class: every directive of the shrunk strategy targets
    // the phase-1 king. (Corrupting any non-king cannot break a single
    // phase — all correct processes still lock on the majority bit.)
    assert!(
        !report.genome.genes.is_empty()
            && report
                .genome
                .genes
                .iter()
                .all(|gene| resolves_to_process_zero(gene.target, report.n)),
        "shrunk attack should single out the phase-1 king: {}",
        report.genome
    );

    // Replay the shrunk genome directly through the interpreter against a
    // hand-built weak Phase King — no registry involved — and confirm the
    // identical violation.
    let stats = evaluate_genome(
        &report.genome,
        report.n,
        report.t,
        12,
        &report.inputs,
        &|_| PhaseKing::with_phases(5, 1, 1),
    )
    .expect("interpreter stays budget-sound");
    assert_eq!(stats.violations, report.violations);
}

#[test]
fn search_trajectory_is_bit_identical_across_thread_counts() {
    // Same seed + budget ⇒ identical trajectory, winner, and report, no
    // matter how the batch evaluations are scheduled.
    let run_with = |threads: usize| {
        let mut spec = SearchSpec::new("phase-king-weak", 5, 1);
        spec.inputs = "majority-one".to_string();
        spec.config = spec.config.with_threads(threads);
        run_adversary_search(&spec).expect("labels are known")
    };
    let serial = run_with(1);
    let parallel = run_with(8);
    assert_eq!(serial.outcome.trajectory, parallel.outcome.trajectory);
    assert_eq!(serial.outcome.best, parallel.outcome.best);
    assert_eq!(serial.outcome.evals, parallel.outcome.evals);
    let (a, b) = (serial.report.unwrap(), parallel.report.unwrap());
    assert_eq!(a, b, "shrunk reports must match bit for bit");
}

#[test]
fn fault_free_weak_phase_king_is_safe_without_the_adversary() {
    // Control: the weakened protocol only fails *under* the found attack —
    // the empty genome (no corruptions) leaves majority-one inputs safe.
    let stats = evaluate_genome(
        &StrategyGenome::empty(0),
        5,
        1,
        12,
        &[Bit::One, Bit::One, Bit::One, Bit::One, Bit::Zero],
        &|_| PhaseKing::with_phases(5, 1, 1),
    )
    .expect("fault-free run");
    assert!(stats.violations.is_empty(), "{:?}", stats.violations);
}
