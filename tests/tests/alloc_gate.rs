//! Allocation-count gate for the stats-mode sweep path.
//!
//! The broadcast representation plus [`StatsSink`](ba_sim::TraceMode::Stats)
//! exist so a campaign point costs O(n · rounds) allocator traffic (outboxes
//! and process state), not O(n² · rounds) (a clone or fragment-map node per
//! edge). This binary installs a counting [`GlobalAlloc`] wrapper — it lives
//! here because `ba-sim` itself forbids unsafe code — and pins the
//! allocations-per-point budget of a phase-king stats sweep, so an
//! accidental return to per-edge allocation fails loudly instead of only
//! showing up as bench noise.
//!
//! Kept to a single `#[test]` so parallel test threads cannot pollute the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ba_sim::Campaign;

/// Counts every `alloc`/`realloc` call and delegates to [`System`].
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation unchanged to `System`; the counter is
// a relaxed atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocation calls made while running `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn stats_sweep_allocations_stay_linear_per_point() {
    let grid = |nts: &[(usize, usize)]| {
        Campaign::grid(nts.iter().copied(), &["none", "isolation"], &["ones"])
            .points()
            .to_vec()
    };
    let sweep = |points: &[ba_sim::CampaignPoint]| {
        let report = ba_bench::dist::scenario_campaign_report(points, "phase-king", 11, 0)
            .expect("registry sweep");
        assert_eq!(report.errors().count(), 0, "{}", report.summary());
    };

    // Warm-up settles one-time allocations (thread-local registries, lazy
    // statics) outside the measured window.
    let points = grid(&[(16, 4), (32, 8), (64, 16)]);
    sweep(&points);

    let allocs = allocations_during(|| sweep(&points));
    let per_point = allocs / points.len() as u64;

    // Slots, message volume, and the per-edge count the budget must NOT
    // track: the n = 64, t = 16 points alone carry >200k messages each.
    let edge_work: u64 = points
        .iter()
        .map(|p| (p.n * p.n) as u64 * 3 * (p.t as u64 + 1))
        .sum();
    let per_point_edges = edge_work / points.len() as u64;

    println!("allocations: {allocs} total, {per_point} per point (per-point edge count {per_point_edges})");

    // Measured: ~70 allocations per point (vs ~80k edges per point) — the
    // buffers are all reused across rounds and points. The hard budget
    // leaves generous headroom for allocator/libstd drift while staying
    // two orders of magnitude below the per-edge count a
    // clone-per-receiver representation would reintroduce.
    assert!(
        per_point < 2_000,
        "stats path allocates {per_point} times per point (budget 2000)"
    );
    assert!(
        per_point < per_point_edges / 32,
        "stats path allocates {per_point} times per point — tracking the \
         per-edge count ({per_point_edges}); the broadcast fan-out must not \
         allocate per receiver"
    );
}
