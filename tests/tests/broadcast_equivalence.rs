//! Broadcast/per-receiver equivalence: fanning a broadcast out from one
//! shared payload (the `Outbox::broadcast` representation plus the engine's
//! by-reference routing) must be **bit-for-bit** indistinguishable from the
//! legacy per-receiver clone representation — identical [`Execution`]s,
//! identical [`ScenarioStats`], and identical distributed merges, for every
//! protocol × fault model (including the reordering scheduler and forging
//! faults) × trace mode.
//!
//! The per-receiver reference path is produced by [`Unicasting`], a protocol
//! adapter that calls [`Outbox::materialize_broadcast`] on every outbox it
//! emits, so the engine only ever sees per-receiver slab entries.

use ba_bench::dist::{run_manifest, scenario_campaign_report};
use ba_crypto::Keybook;
use ba_dist::{merge_campaign_report, plan_shards, Decode, ShardReport, SweepSpec};
use ba_protocols::broken::{
    LeaderEcho, LeaderEchoMsg, OneRoundAllToAll, OwnProposal, ParanoidEcho, ParanoidEchoMsg,
};
use ba_protocols::{DolevStrong, EigConsensus, EigMsg, FloodSet, PhaseKing, PkMsg};
use ba_sim::{
    Adversary, Bit, CampaignPoint, Inbox, Outbox, Payload, ProcessCtx, ProcessId, Protocol,
    RandomOmissionPlan, Round, Scenario, ScenarioStats, SilentByzantine, SimRng, TraceMode,
};

/// Protocol adapter forcing the legacy per-receiver outbox representation:
/// every broadcast the inner protocol queues is materialized into one cloned
/// slab entry per receiver before the engine sees it.
#[derive(Clone)]
struct Unicasting<P>(P);

impl<P: Protocol> Protocol for Unicasting<P> {
    type Input = P::Input;
    type Output = P::Output;
    type Msg = P::Msg;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: P::Input) -> Outbox<P::Msg> {
        let mut out = self.0.propose(ctx, proposal);
        out.materialize_broadcast();
        out
    }

    fn round(&mut self, ctx: &ProcessCtx, round: Round, inbox: &Inbox<P::Msg>) -> Outbox<P::Msg> {
        let mut out = self.0.round(ctx, round, inbox);
        out.materialize_broadcast();
        out
    }

    fn decision(&self) -> Option<P::Output> {
        self.0.decision()
    }
}

/// Fault models under test. Beyond the sink-equivalence roster, `forge`
/// exercises [`Routing::Forge`](ba_sim::Routing) (a Byzantine routing-level
/// payload substitution) and `scheduler` the reordering envelope-queue path —
/// the two flavors whose engine plumbing differs most from plain delivery.
const ADVERSARIES: &[&str] = &[
    "none",
    "isolation",
    "crash",
    "random-omission",
    "byzantine-silent",
    "adaptive-worst-case",
    "mobile",
    "scheduler",
    "forge",
];

fn adversary<M: Payload>(
    label: &str,
    n: usize,
    t: usize,
    seed: u64,
    forged: impl FnOnce() -> M,
) -> Adversary<'static, Bit, M> {
    let last = ProcessId(n - 1);
    match label {
        "none" => Adversary::none(),
        "isolation" => Adversary::isolation([last], Round(2)),
        "crash" => Adversary::crash([(last, Round(2))]),
        "random-omission" => Adversary::omission(
            [last],
            RandomOmissionPlan::new([last], 0.25, 0.25, seed ^ 0xA11CE),
        ),
        "byzantine-silent" => Adversary::one_byzantine(last, SilentByzantine),
        "adaptive-worst-case" => Adversary::adaptive_worst_case(t),
        "mobile" => Adversary::mobile((n - t..n).map(ProcessId), 2),
        "scheduler" => Adversary::scheduler(last, (n - 1) / 2, seed ^ 0xC0DE),
        "forge" => Adversary::forge([last], forged()),
        other => panic!("unknown adversary label {other:?}"),
    }
}

fn inputs(label: &str, n: usize, seed: u64) -> Vec<Bit> {
    match label {
        "zeros" => vec![Bit::Zero; n],
        "ones" => vec![Bit::One; n],
        "alternating" => (0..n).map(|i| Bit::from(i % 2 == 1)).collect(),
        "random" => {
            let mut rng = SimRng::seed_from_u64(seed ^ 0x5EED);
            (0..n).map(|_| Bit::from(rng.gen_bool(0.5))).collect()
        }
        other => panic!("unknown input label {other:?}"),
    }
}

const INPUTS: &[&str] = &["zeros", "ones", "alternating", "random"];

/// Runs one scenario through the broadcast path and the materialized
/// per-receiver path and asserts bit-identical outcomes in every trace mode:
/// equal `Execution`s (or equal typed errors), and equal stats from both the
/// full-trace and the stats-only engine.
fn assert_broadcast_equivalent<P, F>(
    context: &str,
    n: usize,
    t: usize,
    factory: F,
    adv: &str,
    inp: &str,
    forged: P::Msg,
) where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let seed = (n as u64) << 32 | (t as u64) << 16 | 9;
    let scenario = Scenario::new(n, t);
    let broadcast = scenario
        .protocol(&factory)
        .inputs(inputs(inp, n, seed))
        .adversary(adversary(adv, n, t, seed, || forged.clone()))
        .run();
    let unicast = scenario
        .protocol(|pid| Unicasting(factory(pid)))
        .inputs(inputs(inp, n, seed))
        .adversary(adversary(adv, n, t, seed, || forged.clone()))
        .run();
    assert_eq!(
        broadcast, unicast,
        "{context}: broadcast execution diverged from per-receiver execution"
    );

    let broadcast_stats = scenario
        .protocol(&factory)
        .inputs(inputs(inp, n, seed))
        .adversary(adversary(adv, n, t, seed, || forged.clone()))
        .run_stats();
    let unicast_stats = scenario
        .protocol(|pid| Unicasting(factory(pid)))
        .inputs(inputs(inp, n, seed))
        .adversary(adversary(adv, n, t, seed, || forged.clone()))
        .run_stats();
    assert_eq!(
        broadcast_stats, unicast_stats,
        "{context}: broadcast stats diverged from per-receiver stats"
    );
    if let Ok(exec) = &broadcast {
        exec.validate().unwrap_or_else(|e| {
            panic!("{context}: broadcast path produced invalid execution: {e}")
        });
        assert_eq!(
            broadcast_stats.as_ref().ok(),
            Some(&ScenarioStats::from_execution(exec)),
            "{context}: stats engine diverged from trace-derived stats"
        );
    }
}

/// Every protocol × fault model × input profile over a small `(n, t)` grid:
/// the broadcast representation is observationally invisible.
#[test]
fn broadcast_matches_per_receiver_for_all_protocols_and_fault_models() {
    let grid = [(4usize, 1usize), (5, 1), (7, 2)];
    for (n, t) in grid {
        for adv in ADVERSARIES {
            for inp in INPUTS {
                let ctx = |p: &str| format!("{p} n={n} t={t} adv={adv} in={inp}");
                assert_broadcast_equivalent(
                    &ctx("flood-set"),
                    n,
                    t,
                    |_| FloodSet::new(),
                    adv,
                    inp,
                    std::collections::BTreeSet::from([Bit::One]),
                );
                assert_broadcast_equivalent(
                    &ctx("phase-king"),
                    n,
                    t,
                    |_| PhaseKing::new(n, t),
                    adv,
                    inp,
                    PkMsg::Report(Bit::One),
                );
                assert_broadcast_equivalent(
                    &ctx("eig"),
                    n,
                    t,
                    |_| EigConsensus::new(n, t, Bit::Zero),
                    adv,
                    inp,
                    EigMsg::<Bit>::new(),
                );
                assert_broadcast_equivalent(
                    &ctx("leader-echo"),
                    n,
                    t,
                    |_: ProcessId| LeaderEcho::new(ProcessId(0)),
                    adv,
                    inp,
                    LeaderEchoMsg::Report(Bit::One),
                );
                assert_broadcast_equivalent(
                    &ctx("own-proposal"),
                    n,
                    t,
                    |_| OwnProposal::new(),
                    adv,
                    inp,
                    Bit::One,
                );
                assert_broadcast_equivalent(
                    &ctx("one-round-all-to-all"),
                    n,
                    t,
                    |_| OneRoundAllToAll::new(),
                    adv,
                    inp,
                    Bit::One,
                );
                assert_broadcast_equivalent(
                    &ctx("paranoid-echo"),
                    n,
                    t,
                    |_| ParanoidEcho::new(),
                    adv,
                    inp,
                    ParanoidEchoMsg::Report(Bit::One),
                );
            }
        }
    }
}

/// Dolev–Strong separately: its message type carries signature chains, so
/// forging needs a well-formed payload. Covers the non-forging roster.
#[test]
fn broadcast_matches_per_receiver_for_dolev_strong() {
    for (n, t) in [(4usize, 1usize), (5, 2)] {
        for adv in ADVERSARIES.iter().filter(|a| **a != "forge") {
            for inp in INPUTS {
                let keybook = Keybook::new(n);
                let factory = DolevStrong::factory(keybook, ProcessId(0), Bit::Zero);
                let seed = (n as u64) << 32 | (t as u64) << 16 | 9;
                let scenario = Scenario::new(n, t);
                let no_forge = || unreachable!("forge is excluded for dolev-strong");
                let broadcast = scenario
                    .protocol(&factory)
                    .inputs(inputs(inp, n, seed))
                    .adversary(adversary(adv, n, t, seed, no_forge))
                    .run();
                let unicast = scenario
                    .protocol(|pid| Unicasting(factory(pid)))
                    .inputs(inputs(inp, n, seed))
                    .adversary(adversary(adv, n, t, seed, no_forge))
                    .run();
                assert_eq!(
                    broadcast, unicast,
                    "dolev-strong n={n} t={t} adv={adv} in={inp}: diverged"
                );
            }
        }
    }
}

/// Trace-mode invariance on the broadcast path: `run_report` under
/// [`TraceMode::Full`] (materialize + validate + derive) equals the default
/// stats-only report for broadcast-shaped outboxes.
#[test]
fn broadcast_reports_are_trace_mode_invariant() {
    for (n, t) in [(4usize, 1usize), (7, 2), (10, 3)] {
        for adv in ADVERSARIES {
            let seed = (n as u64) << 32 | 1;
            let build = |mode: TraceMode| {
                Scenario::new(n, t)
                    .trace_mode(mode)
                    .protocol(|_| PhaseKing::new(n, t))
                    .inputs(inputs("alternating", n, seed))
                    .adversary(adversary(adv, n, t, seed, || PkMsg::Report(Bit::One)))
                    .run_report()
            };
            assert_eq!(
                build(TraceMode::Stats),
                build(TraceMode::Full),
                "phase-king n={n} t={t} adv={adv}: trace modes diverged"
            );
        }
    }
}

/// `merge(k) == run(1)`: sharded distributed sweeps over broadcast-migrated
/// registry protocols reassemble bit-identically to the unsharded run.
#[test]
fn distributed_merges_are_bit_identical_on_the_broadcast_path() {
    let points: Vec<CampaignPoint> = ba_sim::Campaign::grid(
        (4..9).map(|n| (n, (n - 1) / 3)),
        &[
            "none",
            "isolation",
            "crash",
            "adaptive-worst-case",
            "scheduler",
        ],
        &["alternating"],
    )
    .points()
    .to_vec();

    for protocol in ["phase-king", "dolev-strong", "flood-set", "leader-echo"] {
        let spec = SweepSpec::scenarios(points.clone(), protocol)
            .base_seed(0xBCA57)
            .worker_threads(1);
        let mut shard_reports: Vec<ShardReport<ScenarioStats<Bit>>> = Vec::new();
        for manifest in plan_shards(&spec, 3) {
            let wire = run_manifest(&manifest).expect("shard run");
            shard_reports.push(ShardReport::from_wire(&wire).expect("wire round-trip"));
        }
        let merged = merge_campaign_report(&points, shard_reports).expect("merge");
        let reference =
            scenario_campaign_report(&points, protocol, 0xBCA57, 1).expect("reference sweep");
        assert_eq!(
            merged, reference,
            "{protocol}: merge(3) diverged from run(1)"
        );
    }
}
