//! Chaos testing of the computational model: an *arbitrary* (but
//! deterministic) protocol, driven under random omission plans, must still
//! produce executions satisfying the five guarantees, and the trace surgery
//! (swap_omission) must preserve every process's observations — the model's
//! invariants cannot depend on protocols being sensible.

use std::collections::BTreeSet;
use std::hash::{DefaultHasher, Hash, Hasher};

use proptest::prelude::*;

use ba_core::lowerbound::swap_omission;
use ba_sim::{
    run_omission, Bit, ExecutorConfig, Inbox, Outbox, ProcessCtx, ProcessId, Protocol,
    RandomOmissionPlan, Round,
};

fn mix(parts: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    parts.hash(&mut h);
    h.finish()
}

/// A protocol whose sending/deciding behavior is an arbitrary deterministic
/// function of everything it has observed.
#[derive(Clone, Debug)]
struct Chaos {
    seed: u64,
    state: u64,
    active_rounds: u64,
    decision: Option<Bit>,
}

impl Chaos {
    fn new(seed: u64) -> Self {
        Chaos { seed, state: 0, active_rounds: seed % 5 + 1, decision: None }
    }

    fn maybe_decide(&mut self) {
        if self.decision.is_none() && self.state % 3 == 0 {
            self.decision = Some(Bit::from(self.state % 2 == 1));
        }
    }

    fn emit(&self, ctx: &ProcessCtx, round: u64) -> Outbox<u64> {
        let mut out = Outbox::new();
        if round > self.active_rounds {
            return out;
        }
        for peer in ctx.others() {
            let tag = mix(&[self.state, peer.index() as u64, round]);
            if tag % 3 != 0 {
                out.send(peer, tag);
            }
        }
        out
    }
}

impl Protocol for Chaos {
    type Input = Bit;
    type Output = Bit;
    type Msg = u64;

    fn propose(&mut self, ctx: &ProcessCtx, proposal: Bit) -> Outbox<u64> {
        self.state = mix(&[self.seed, ctx.id.index() as u64, u64::from(u8::from(proposal))]);
        self.maybe_decide();
        self.emit(ctx, 1)
    }

    fn round(&mut self, ctx: &ProcessCtx, round: Round, inbox: &Inbox<u64>) -> Outbox<u64> {
        let mut parts = vec![self.state, round.0];
        for (sender, payload) in inbox.iter() {
            parts.push(sender.index() as u64);
            parts.push(*payload);
        }
        self.state = mix(&parts);
        self.maybe_decide();
        self.emit(ctx, round.0 + 1)
    }

    fn decision(&self) -> Option<Bit> {
        self.decision
    }
}

fn chaos_system() -> impl Strategy<Value = (usize, usize, u64, u64, Vec<bool>, Vec<bool>)> {
    (3usize..=7).prop_flat_map(|n| {
        (1usize..n).prop_flat_map(move |t| {
            (
                Just(n),
                Just(t),
                any::<u64>(), // protocol seed
                any::<u64>(), // plan seed
                proptest::collection::vec(any::<bool>(), n),
                proptest::collection::vec(any::<bool>(), n),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary protocols + random omission plans still yield executions
    /// satisfying the five guarantees, and the runs are reproducible.
    #[test]
    fn chaos_executions_satisfy_the_model(
        (n, t, pseed, planseed, props, mask) in chaos_system()
    ) {
        let faulty: BTreeSet<ProcessId> = ProcessId::all(n)
            .zip(&mask)
            .filter(|(_, m)| **m)
            .map(|(p, _)| p)
            .take(t)
            .collect();
        let proposals: Vec<Bit> = props.iter().map(|b| Bit::from(*b)).collect();
        let cfg = ExecutorConfig::new(n, t).with_max_rounds(12);
        let run = || {
            let mut plan = RandomOmissionPlan::new(faulty.iter().copied(), 0.4, 0.4, planseed);
            run_omission(&cfg, |_| Chaos::new(pseed), &proposals, &faulty, &mut plan).unwrap()
        };
        let exec = run();
        prop_assert_eq!(exec.validate(), Ok(()));
        // Reproducibility: the full trace is identical across reruns.
        prop_assert_eq!(&exec, &run());
        // Message accounting is internally consistent.
        prop_assert!(exec.message_complexity() <= exec.total_messages());
    }

    /// swap_omission preserves observations even for chaos protocols.
    #[test]
    fn chaos_swap_preserves_observations(
        (n, t, pseed, planseed, props, mask) in chaos_system()
    ) {
        let faulty: BTreeSet<ProcessId> = ProcessId::all(n)
            .zip(&mask)
            .filter(|(_, m)| **m)
            .map(|(p, _)| p)
            .take(t)
            .collect();
        prop_assume!(!faulty.is_empty());
        let proposals: Vec<Bit> = props.iter().map(|b| Bit::from(*b)).collect();
        let cfg = ExecutorConfig::new(n, t).with_max_rounds(10);
        // Receive-omissions only, so pivots have no send-omissions.
        let mut plan = RandomOmissionPlan::new(faulty.iter().copied(), 0.0, 0.5, planseed);
        let exec = run_omission(&cfg, |_| Chaos::new(pseed), &proposals, &faulty, &mut plan)
            .unwrap();
        for pivot in &faulty {
            if let Ok(swapped) = swap_omission(&exec, *pivot) {
                prop_assert_eq!(swapped.validate(), Ok(()));
                prop_assert!(swapped.is_correct(*pivot));
                for pid in ProcessId::all(n) {
                    prop_assert!(exec.indistinguishable_to(&swapped, pid));
                    prop_assert_eq!(exec.decision_of(pid), swapped.decision_of(pid));
                }
            }
        }
    }

    /// Isolation is exactly what Definition 1 says, for arbitrary traffic:
    /// the isolated group receives nothing from outside from round k on,
    /// everything before, and never send-omits.
    #[test]
    fn chaos_isolation_matches_definition_1(
        (n, t, pseed, _planseed, props, _mask) in chaos_system(),
        k in 1u64..4,
    ) {
        let group: BTreeSet<ProcessId> = [ProcessId(n - 1)].into();
        prop_assume!(t >= 1);
        let proposals: Vec<Bit> = props.iter().map(|b| Bit::from(*b)).collect();
        let cfg = ExecutorConfig::new(n, t).with_max_rounds(10);
        let mut plan = ba_sim::IsolationPlan::new(group.iter().copied(), Round(k));
        let exec = run_omission(&cfg, |_| Chaos::new(pseed), &proposals, &group, &mut plan)
            .unwrap();
        let member = ProcessId(n - 1);
        let rec = exec.record(member);
        prop_assert!(rec.all_send_omitted().next().is_none(), "isolated never send-omits");
        for (i, frag) in rec.fragments.iter().enumerate() {
            let round = i as u64 + 1;
            if round >= k {
                prop_assert!(
                    frag.received.keys().all(|s| group.contains(s)),
                    "outside message received after isolation"
                );
            } else {
                prop_assert!(frag.receive_omitted.is_empty(), "omission before isolation");
            }
        }
    }
}
