//! The failure-model boundary: crash ⊊ omission ⊊ Byzantine.
//!
//! The paper proves its Ω(t²) bound in the *omission* model, and the power
//! it draws on — honest-looking processes silently dropping messages — is
//! exactly what separates omission from crash. FloodSet makes the boundary
//! concrete: correct under crashes, broken under omission.

use ba_core::lowerbound::{falsify, probe_weak_consensus, FalsifierConfig, ProbeOutcome, Verdict};
use ba_protocols::FloodSet;
use ba_sim::{Adversary, Bit, ExecutorConfig, Fate, ProcessId, Round, Scenario, TableOmissionPlan};
use ba_tests::{assert_agreement, assert_certificate, correct_decisions, uniform};

#[test]
fn floodset_agreement_under_exhaustive_crash_schedules() {
    // Sweep every crash schedule of two processes over the first t+2
    // rounds: agreement must hold in all of them.
    let (n, t) = (5, 2);
    for r1 in 1..=(t as u64 + 2) {
        for r2 in 1..=(t as u64 + 2) {
            let exec = Scenario::new(n, t)
                .protocol(|_| FloodSet::new())
                .inputs([Bit::One, Bit::One, Bit::One, Bit::Zero, Bit::Zero])
                .adversary(Adversary::crash([
                    (ProcessId(3), Round(r1)),
                    (ProcessId(4), Round(r2)),
                ]))
                .run()
                .unwrap();
            exec.validate().unwrap();
            assert_agreement(&exec);
        }
    }
}

#[test]
fn floodset_breaks_under_omission_sandbagging() {
    // The explicit sandbagger: hide a value behind send-omissions until the
    // last round, then reveal it to exactly one correct process.
    let (n, t) = (5, 2);
    let last = t as u64 + 1;
    let mut plan = TableOmissionPlan::new();
    for round in 1..=last {
        for receiver in 0..n - 1 {
            if round < last || receiver != 0 {
                plan.set(
                    Round(round),
                    ProcessId(4),
                    ProcessId(receiver),
                    Fate::SendOmit,
                );
            }
        }
    }
    let exec = Scenario::new(n, t)
        .protocol(|_| FloodSet::new())
        .inputs([Bit::One, Bit::One, Bit::One, Bit::One, Bit::Zero])
        .adversary(Adversary::omission([ProcessId(4)], plan))
        .run()
        .unwrap();
    exec.validate().unwrap();
    let decisions = correct_decisions(&exec);
    assert_eq!(
        decisions.len(),
        2,
        "sandbagging must split the correct processes"
    );
}

#[test]
fn floodset_survives_the_falsifier_as_it_is_quadratic() {
    // FloodSet sends (t+1)·n(n−1) messages — far above the floor — so the
    // Theorem 2 recipe rightly cannot refute it, even though it is broken
    // under general omission (the falsifier's isolation adversary never
    // sandbags: isolated processes receive-omit, they do not send-omit).
    for (n, t) in [(8usize, 2usize), (12, 4)] {
        let cfg = FalsifierConfig::new(n, t);
        let verdict = falsify(&cfg, |_| FloodSet::new()).unwrap();
        match verdict {
            Verdict::Survived(report) => {
                assert!(report.max_message_complexity >= report.paper_bound);
            }
            Verdict::Violation(cert) => {
                panic!("unexpected refutation at n={n}, t={t}: {:?}", cert.kind)
            }
        }
    }
}

#[test]
fn random_prober_finds_floodset_omission_violations() {
    // Random send/receive omissions *can* stumble into the sandbagging
    // pattern; with enough trials the prober exhibits the violation and the
    // certificate verifies.
    let cfg = ExecutorConfig::new(5, 2);
    let outcome = probe_weak_consensus(&cfg, |_| FloodSet::new(), 400, 17).unwrap();
    match outcome {
        ProbeOutcome::Violation(cert, report) => {
            assert_certificate(&cert);
            assert!(report.trials <= 400);
        }
        ProbeOutcome::Clean(report) => panic!(
            "expected the prober to break FloodSet under omission within {} trials",
            report.trials
        ),
    }
}

#[test]
fn floodset_is_weak_consensus_in_fault_free_runs() {
    let (n, t) = (6, 2);
    for bit in Bit::ALL {
        let exec = Scenario::new(n, t)
            .protocol(|_| FloodSet::new())
            .inputs(uniform(n, bit))
            .run()
            .unwrap();
        assert!(exec.all_correct_decided(bit));
    }
}
