//! End-to-end Theorem 2 (EXP-T2): the falsifier defeats every sub-quadratic
//! weak-consensus claim in the catalog and produces machine-checkable
//! certificates; correct (quadratic) protocols survive with message
//! complexity consistent with the bound.

use ba_core::lowerbound::{falsify, FalsifierConfig, Verdict, ViolationKind};
use ba_crypto::Keybook;
use ba_protocols::broken::{
    LeaderEcho, OneRoundAllToAll, OwnProposal, ParanoidEcho, SilentConstant,
};
use ba_protocols::DolevStrong;
use ba_sim::{Bit, ProcessId};
use ba_tests::assert_certificate;

#[test]
fn silent_constants_fail_weak_validity_at_every_scale() {
    for (n, t) in [(5usize, 2usize), (8, 3), (16, 8), (24, 16)] {
        for bit in Bit::ALL {
            let cfg = FalsifierConfig::new(n, t);
            let verdict = falsify(&cfg, |_| SilentConstant::new(bit)).unwrap();
            let cert = verdict
                .certificate()
                .unwrap_or_else(|| panic!("SilentConstant({bit}) must be refuted at n={n}, t={t}"));
            assert_certificate(cert);
            assert!(matches!(cert.kind, ViolationKind::WeakValidity { .. }));
            // Zero messages in the certificate execution.
            assert_eq!(cert.execution.total_messages(), 0);
        }
    }
}

#[test]
fn own_proposal_fails_agreement_at_every_scale() {
    for (n, t) in [(5usize, 2usize), (9, 4), (16, 8)] {
        let cfg = FalsifierConfig::new(n, t);
        let verdict = falsify(&cfg, |_| OwnProposal::new()).unwrap();
        let cert = verdict
            .certificate()
            .unwrap_or_else(|| panic!("must be refuted at n={n}, t={t}"));
        assert_certificate(cert);
        assert!(matches!(cert.kind, ViolationKind::Agreement { .. }));
    }
}

#[test]
fn leader_echo_fails_for_every_leader_position() {
    // The partition puts the isolation groups at the top of the id range;
    // the refutation must not depend on the leader sitting in group A.
    let (n, t) = (10, 4);
    for leader in [0usize, 3, 8, 9] {
        let cfg = FalsifierConfig::new(n, t);
        let verdict = falsify(&cfg, |_| LeaderEcho::new(ProcessId(leader))).unwrap();
        let cert = verdict
            .certificate()
            .unwrap_or_else(|| panic!("LeaderEcho(leader=p{leader}) must be refuted"));
        assert_certificate(cert);
    }
}

#[test]
fn leader_echo_certificate_has_linear_messages() {
    // The violating execution itself exhibits the sub-quadratic complexity
    // that made the protocol refutable.
    let (n, t) = (16, 8);
    let cfg = FalsifierConfig::new(n, t);
    let verdict = falsify(&cfg, |_| LeaderEcho::new(ProcessId(0))).unwrap();
    let cert = verdict.certificate().expect("refuted");
    assert!(cert.execution.total_messages() <= 2 * (n as u64) - 2);
    assert!(
        cert.execution.total_messages() < cfg.paper_bound().max(1) * 32,
        "certificate execution is cheap, as the theorem requires"
    );
}

#[test]
fn provenance_traces_the_proof_structure() {
    let cfg = FalsifierConfig::new(12, 4);
    let verdict = falsify(&cfg, |_| OwnProposal::new()).unwrap();
    let cert = verdict.certificate().expect("refuted");
    let text = cert.provenance.join("\n");
    // The derivation must reference the proof artifacts it used.
    assert!(text.contains("R_max"), "missing R_max note:\n{text}");
    assert!(text.contains("Lemma"), "missing lemma reference:\n{text}");
    assert!(
        text.contains("E_B(1)_0"),
        "missing family reference:\n{text}"
    );
}

#[test]
fn dolev_strong_weak_consensus_survives() {
    for (n, t) in [(6usize, 2usize), (8, 3), (10, 4)] {
        let cfg = FalsifierConfig::new(n, t);
        let book = Keybook::new(n);
        let verdict = falsify(&cfg, DolevStrong::factory(book, ProcessId(0), Bit::Zero)).unwrap();
        match verdict {
            Verdict::Survived(report) => {
                assert!(report.executions_explored >= 6);
                // The observed complexity must sit above the paper floor
                // (which is tiny at these t, but the relation must hold).
                assert!(report.max_message_complexity >= report.paper_bound);
            }
            Verdict::Violation(cert) => panic!(
                "Dolev-Strong wrongly refuted at n={n}, t={t}: {:?}\n{:#?}",
                cert.kind, cert.provenance
            ),
        }
    }
}

#[test]
fn paranoid_echo_survives_paper_recipe_but_exercises_critical_round() {
    // ParanoidEcho has the default-1 structure: the falsifier must walk the
    // Lemma 4 critical-round scan and the Lemma 5 merge, then survive
    // because the protocol is quadratic.
    let (n, t) = (8, 2);
    let cfg = FalsifierConfig::new(n, t);
    let verdict = falsify(&cfg, |_| ParanoidEcho::new()).unwrap();
    match verdict {
        Verdict::Survived(report) => {
            let text = report.notes.join("\n");
            assert!(
                text.contains("merged execution"),
                "the merge endgame should have run:\n{text}"
            );
            assert!(report.max_message_complexity >= report.paper_bound);
        }
        Verdict::Violation(cert) => panic!(
            "unexpected refutation: {:?}\n{:#?}",
            cert.kind, cert.provenance
        ),
    }
}

#[test]
fn one_round_all_to_all_survival_is_explained() {
    let cfg = FalsifierConfig::new(8, 2);
    let verdict = falsify(&cfg, |_| OneRoundAllToAll::new()).unwrap();
    let Verdict::Survived(report) = verdict else {
        panic!("expected survival")
    };
    // The survival notes must record that the pigeonhole failed, which is
    // the honest outcome for an n(n-1)-message protocol.
    assert!(report
        .notes
        .iter()
        .any(|s| s.contains("too many") || s.contains("pigeonhole") || s.contains("omission")));
}

#[test]
fn echo_chain_family_exercises_critical_rounds_at_every_depth() {
    // EchoChain(s) is quadratic and default-1: the falsifier must walk the
    // Lemma 4 scan to depth s − 1 and the Lemma 5 merge in every instance,
    // then survive.
    use ba_protocols::broken::EchoChain;
    let (n, t) = (8, 2);
    for stages in 2..=5u64 {
        let cfg = FalsifierConfig::new(n, t);
        let verdict = falsify(&cfg, move |_| EchoChain::new(stages)).unwrap();
        match verdict {
            Verdict::Survived(report) => {
                assert!(
                    report.notes.iter().any(|s| s.contains("merged execution")),
                    "stages {stages}: merge endgame missing: {:?}",
                    report.notes
                );
            }
            Verdict::Violation(cert) => {
                panic!("EchoChain({stages}) wrongly refuted: {:?}", cert.kind)
            }
        }
    }
}

#[test]
fn falsifier_is_deterministic() {
    let cfg = FalsifierConfig::new(10, 4);
    let v1 = falsify(&cfg, |_| LeaderEcho::new(ProcessId(0))).unwrap();
    let v2 = falsify(&cfg, |_| LeaderEcho::new(ProcessId(0))).unwrap();
    match (v1, v2) {
        (Verdict::Violation(a), Verdict::Violation(b)) => {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.execution, b.execution);
        }
        _ => panic!("expected identical violations"),
    }
}
