//! Legacy-adversary equivalence through the `FaultModel` layer.
//!
//! The `Adversary` enum became constructors over the `FaultModel` trait;
//! this suite pins the refactor's contract: every legacy adversary flavor —
//! omission (isolation and seeded-random plans), Byzantine, crash, and
//! mixed — produces **bit-identical** `Execution`s and `ScenarioStats`
//! whether built through the legacy constructor sugar or through an
//! explicitly assembled fault model (`PlannedFaults` + behaviors), for
//! every protocol × trace mode.
//!
//! A second set of absolute pins guards against the refactor changing the
//! recorded behavior itself (both sides of the equivalence drifting
//! together): known fragment shapes for isolation and crash runs.

use ba_crypto::Keybook;
use ba_protocols::broken::LeaderEcho;
use ba_protocols::{DolevStrong, FloodSet, PhaseKing};
use ba_sim::{
    Adversary, Bit, BoxedBehavior, CrashPlan, FaultMode, IsolationPlan, NoFaults, PlannedFaults,
    ProcessId, Protocol, RandomOmissionPlan, Round, Scenario, ScenarioStats, SilentByzantine,
    TraceMode,
};

/// Legacy flavors under test; each returns the constructor-sugar adversary
/// and the explicit trait-level reconstruction that must match it exactly.
const FLAVORS: &[&str] = &[
    "none",
    "isolation",
    "crash",
    "random-omission",
    "byzantine",
    "mixed",
];

fn sugar<M: ba_sim::Payload>(label: &str, n: usize, seed: u64) -> Adversary<'static, Bit, M> {
    let last = ProcessId(n - 1);
    match label {
        "none" => Adversary::none(),
        "isolation" => Adversary::isolation([last], Round(2)),
        "crash" => Adversary::crash([(last, Round(2))]),
        "random-omission" => {
            Adversary::omission([last], RandomOmissionPlan::new([last], 0.25, 0.25, seed))
        }
        "byzantine" => Adversary::one_byzantine(last, SilentByzantine),
        "mixed" => {
            let om = ProcessId(n - 2);
            Adversary::mixed(
                [(last, Box::new(SilentByzantine) as _)],
                [om],
                RandomOmissionPlan::new([om], 0.3, 0.3, seed ^ 0xB0B),
            )
        }
        other => panic!("unknown flavor {other:?}"),
    }
}

/// The same flavor rebuilt by hand from `FaultModel` parts — what the sugar
/// constructors are documented to produce.
fn explicit<M: ba_sim::Payload>(label: &str, n: usize, seed: u64) -> Adversary<'static, Bit, M> {
    let last = ProcessId(n - 1);
    match label {
        "none" => Adversary::model(PlannedFaults::none()),
        "isolation" => Adversary::model(PlannedFaults::new(
            [last],
            IsolationPlan::new([last], Round(2)),
        )),
        "crash" => Adversary::model(PlannedFaults::new(
            [last],
            CrashPlan::new([(last, Round(2))]),
        )),
        "random-omission" => Adversary::model(PlannedFaults::new(
            [last],
            RandomOmissionPlan::new([last], 0.25, 0.25, seed),
        )),
        "byzantine" => Adversary::model_with_behaviors(
            [(
                last,
                Box::new(SilentByzantine) as BoxedBehavior<'static, Bit, M>,
            )],
            PlannedFaults::new([last], NoFaults),
        )
        .with_fault_mode(FaultMode::Byzantine),
        "mixed" => {
            let om = ProcessId(n - 2);
            Adversary::model_with_behaviors(
                [(
                    last,
                    Box::new(SilentByzantine) as BoxedBehavior<'static, Bit, M>,
                )],
                PlannedFaults::new(
                    [om, last],
                    RandomOmissionPlan::new([om], 0.3, 0.3, seed ^ 0xB0B),
                ),
            )
        }
        other => panic!("unknown flavor {other:?}"),
    }
}

fn assert_flavor_equivalent<P, F>(context: &str, n: usize, t: usize, factory: F)
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let seed = (n as u64) << 24 | (t as u64) << 8 | 0x5A;
    for flavor in FLAVORS {
        if *flavor == "mixed" && t < 2 {
            continue;
        }
        let scenario = |adv: Adversary<'static, Bit, P::Msg>| {
            Scenario::new(n, t)
                .protocol(&factory)
                .inputs((0..n).map(|i| Bit::from(i % 2 == 0)))
                .adversary(adv)
        };
        let ctx = format!("{context} flavor={flavor}");

        // Bit-identical full traces.
        let exec_sugar = scenario(sugar(flavor, n, seed)).run().unwrap();
        let exec_explicit = scenario(explicit(flavor, n, seed)).run().unwrap();
        exec_sugar
            .validate()
            .unwrap_or_else(|e| panic!("{ctx}: invalid execution: {e}"));
        assert_eq!(exec_sugar, exec_explicit, "{ctx}: executions diverged");

        // Value-identical stats, per trace mode.
        for mode in [TraceMode::Stats, TraceMode::Full] {
            let stats_sugar = scenario(sugar(flavor, n, seed))
                .trace_mode(mode)
                .run_report()
                .unwrap();
            let stats_explicit = scenario(explicit(flavor, n, seed))
                .trace_mode(mode)
                .run_report()
                .unwrap();
            assert_eq!(
                stats_sugar, stats_explicit,
                "{ctx} mode={mode:?}: stats diverged"
            );
            assert_eq!(
                stats_sugar,
                ScenarioStats::from_execution(&exec_sugar),
                "{ctx} mode={mode:?}: stats diverged from the trace"
            );
        }
    }
}

#[test]
fn legacy_flavors_are_bit_identical_through_the_fault_model_path() {
    // n > 3t so phase-king participates everywhere; t = 2 points exercise
    // the mixed flavor.
    for (n, t) in [(4usize, 1usize), (7, 2)] {
        assert_flavor_equivalent(&format!("flood-set n={n} t={t}"), n, t, |_| FloodSet::new());
        assert_flavor_equivalent(
            &format!("dolev-strong n={n} t={t}"),
            n,
            t,
            DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero),
        );
        assert_flavor_equivalent(&format!("phase-king n={n} t={t}"), n, t, |_| {
            PhaseKing::new(n, t)
        });
        assert_flavor_equivalent(&format!("leader-echo n={n} t={t}"), n, t, |_: ProcessId| {
            LeaderEcho::new(ProcessId(0))
        });
    }
}

/// Absolute pins: the recorded shape of legacy runs must not drift even if
/// both construction routes drift together.
#[test]
fn legacy_fragment_shapes_are_preserved() {
    let (n, t) = (4, 1);
    let exec = Scenario::new(n, t)
        .protocol(|_| FloodSet::new())
        .uniform_input(Bit::One)
        .adversary(Adversary::isolation([ProcessId(3)], Round(2)))
        .run()
        .unwrap();
    // Round 1 delivered in full; from round 2 the isolated process
    // receive-omits all outside traffic.
    assert_eq!(exec.record(ProcessId(3)).fragments[0].received.len(), 3);
    assert_eq!(exec.record(ProcessId(3)).fragments[1].received.len(), 0);
    assert_eq!(
        exec.record(ProcessId(3)).fragments[1].receive_omitted.len(),
        3
    );
    assert_eq!(exec.mode, FaultMode::Omission);
    assert_eq!(exec.faulty, [ProcessId(3)].into_iter().collect());

    let exec = Scenario::new(n, t)
        .protocol(|_| FloodSet::new())
        .uniform_input(Bit::Zero)
        .adversary(Adversary::crash([(ProcessId(1), Round(2))]))
        .run()
        .unwrap();
    assert_eq!(exec.record(ProcessId(1)).fragments[0].send_omitted.len(), 0);
    assert_eq!(exec.record(ProcessId(1)).fragments[1].send_omitted.len(), 3);
}

/// The legacy error surface is unchanged: oversize static sets are
/// `TooManyFaulty`, inconsistent behavior assignments `BehaviorMismatch`.
#[test]
fn legacy_error_surface_is_preserved() {
    let err = Scenario::new(3, 1)
        .protocol(|_| FloodSet::new())
        .uniform_input(Bit::Zero)
        .adversary(Adversary::omission([ProcessId(0), ProcessId(1)], NoFaults))
        .run()
        .unwrap_err();
    assert_eq!(err, ba_sim::SimError::TooManyFaulty { got: 2, t: 1 });

    let err = Scenario::new(4, 2)
        .protocol(|_| FloodSet::new())
        .uniform_input(Bit::Zero)
        .adversary(Adversary::mixed(
            [(ProcessId(1), Box::new(SilentByzantine) as _)],
            [ProcessId(1)],
            NoFaults,
        ))
        .run()
        .unwrap_err();
    assert_eq!(
        err,
        ba_sim::SimError::BehaviorMismatch {
            process: ProcessId(1)
        }
    );
}
