//! Cross-crate validation of the exhaustive model checker.
//!
//! * **Differential harness** — on the single-process-omission subspace
//!   (static corruption, no forging, no reordering) the new branching
//!   explorer and the legacy mask-enumerating
//!   [`exhaustive_omission_check`] must agree *exactly*: same verdict,
//!   same violation kind, and the same minimal certificate execution.
//!   Every protocol in `ba-protocols` goes through the harness, including
//!   all the planted `broken` bugs — each must be caught.
//! * **Replay property** — every shrunk violation tape must replay, by
//!   direct fault-model interpretation, to the very violation it claims.
//! * **Determinism and sharding** — thread counts must not change the
//!   outcome, and merging a sharded wire-level sweep must reproduce the
//!   unsharded sweep value-for-value, on violating, exhausted, and
//!   budget-capped spaces alike.

use ba_bench::check::{merge_check_points, CheckLabel, CheckSweepPoint};
use ba_bench::dist::{registry_check, run_manifest};
use ba_check::{check, replay, CheckOutcome, CheckSpec, CorruptionSpace};
use ba_core::lowerbound::{exhaustive_omission_check, ExhaustiveConfig, ExhaustiveOutcome};
use ba_crypto::Keybook;
use ba_dist::{merge_reports, plan_shards, Decode, ShardReport, SweepSpec};
use ba_protocols::broken::{
    EchoChain, LeaderEcho, OneRoundAllToAll, OwnProposal, ParanoidEcho, SilentConstant,
};
use ba_protocols::{DolevStrong, FloodSet, PhaseKing};
use ba_sim::{Bit, CampaignPoint, ExecutorConfig, ProcessId, Protocol};

/// Runs both checkers over the same single-process-omission space and
/// asserts they agree exactly; returns whether the space was refuted.
fn differential<P, F>(
    label: &str,
    factory: F,
    (n, t): (usize, usize),
    rounds: u64,
    send_only: bool,
    proposals: &[Bit],
    corrupted: ProcessId,
) -> bool
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P + Sync,
{
    let cfg = ExecutorConfig::new(n, t);
    let mut bounds = ExhaustiveConfig::new(rounds);
    if send_only {
        bounds = bounds.send_only();
    }
    let legacy = exhaustive_omission_check(&cfg, &factory, proposals, corrupted, &bounds)
        .expect("legacy check runs");

    let mut spec: CheckSpec<P::Msg> = CheckSpec::new(cfg, rounds).static_corruption([corrupted]);
    if send_only {
        spec = spec.send_only();
    }
    let outcome = check(&spec, &factory, proposals, 1).expect("new check runs");
    assert!(
        outcome.report().complete,
        "{label}: differential space must be fully explored"
    );

    match (&legacy, &outcome) {
        (ExhaustiveOutcome::Robust(_), CheckOutcome::Exhausted(_)) => false,
        (ExhaustiveOutcome::Violation(legacy_cert, _), CheckOutcome::Violation(found, _)) => {
            assert_eq!(
                found.certificate.kind, legacy_cert.kind,
                "{label}: violation kinds must match"
            );
            assert_eq!(
                found.certificate.execution, legacy_cert.execution,
                "{label}: both checkers must pick the same minimal violating execution"
            );
            legacy_cert.verify().expect("legacy certificate verifies");
            found
                .certificate
                .verify()
                .expect("new certificate verifies");

            // Replay property: the shrunk tape, interpreted directly by the
            // fault layer, reproduces the exact claimed violation.
            let replayed =
                replay(&spec, &factory, proposals, &found.choices).expect("shrunk tape replays");
            assert_eq!(replayed.violation, Some(found.certificate.kind));
            assert_eq!(replayed.corrupted, found.corrupted);
            assert_eq!(replayed.choices, found.choices);
            assert_eq!(replayed.execution, found.certificate.execution);
            true
        }
        (legacy, fresh) => panic!("{label}: verdicts diverge — legacy {legacy:?} vs {fresh:?}"),
    }
}

#[test]
fn differential_harness_agrees_with_the_legacy_checker_on_every_protocol() {
    let (n, t) = (4, 1);
    let mixed: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 1)).collect();
    let zeros = vec![Bit::Zero; n];
    let ones = vec![Bit::One; n];

    // The planted bugs, each caught by both checkers with identical minimal
    // certificates.
    assert!(differential(
        "one-round-all-to-all",
        |_| OneRoundAllToAll::new(),
        (n, t),
        1,
        true,
        &zeros,
        ProcessId(0),
    ));
    assert!(differential(
        "paranoid-echo",
        |_| ParanoidEcho::new(),
        (n, t),
        2,
        true,
        &zeros,
        ProcessId(0),
    ));
    assert!(differential(
        "echo-chain",
        |_| EchoChain::new(2),
        (n, t),
        2,
        true,
        &zeros,
        ProcessId(0),
    ));
    // A unanimous-zero verdict omitted to one process in round 2 splits the
    // decisions; the corrupted leader is where the bug lives.
    assert!(differential(
        "leader-echo",
        |_| LeaderEcho::new(ProcessId(0)),
        (n, t),
        2,
        true,
        &zeros,
        ProcessId(0),
    ));
    assert!(differential(
        "own-proposal",
        |_| OwnProposal::new(),
        (n, t),
        1,
        false,
        &mixed,
        ProcessId(3),
    ));

    // The robust protocols: proofs by enumeration from both checkers, over
    // several proposal profiles and omission directions.
    for proposals in [&zeros, &ones, &mixed] {
        assert!(!differential(
            "dolev-strong",
            DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero),
            (n, t),
            2,
            false,
            proposals,
            ProcessId(3),
        ));
        assert!(!differential(
            "flood-set",
            |_| FloodSet::new(),
            (n, t),
            1,
            false,
            proposals,
            ProcessId(1),
        ));
        assert!(!differential(
            "phase-king",
            |_| PhaseKing::new(n, t),
            (n, t),
            1,
            true,
            proposals,
            ProcessId(2),
        ));
        assert!(!differential(
            "phase-king-weak",
            |_| PhaseKing::with_phases(n, t, 1),
            (n, t),
            1,
            true,
            proposals,
            ProcessId(2),
        ));
    }

    // silent-constant-1 stonewalls Termination/Agreement checks under a
    // *corrupted* process (its constant decision is unanimous), so the
    // omission-only differential space holds — on both checkers.
    assert!(!differential(
        "silent-constant-1",
        |_| SilentConstant::new(Bit::One),
        (n, t),
        1,
        false,
        &zeros,
        ProcessId(0),
    ));
}

#[test]
fn empty_corruption_root_catches_weak_validity_beyond_the_legacy_subspace() {
    // The legacy checker always corrupts one process, which makes Weak
    // Validity vacuous; the branching explorer's corruption point includes
    // the *empty* set, where a constant-deciding protocol is refutable.
    const N: usize = 4;
    let spec: CheckSpec<Bit> = CheckSpec::new(ExecutorConfig::new(N, 1), 1).up_to(0);
    let outcome =
        check(&spec, |_| SilentConstant::new(Bit::One), &[Bit::Zero; N], 1).expect("check runs");
    let found = outcome.violation().expect("weak validity must fall");
    assert!(found.corrupted.is_empty(), "fault-free violation");
    assert!(found.choices.is_empty(), "no adversary choices needed");
    found.certificate.verify().expect("certificate verifies");
    assert!(found.certificate.kind.to_string().contains("Validity"));
}

#[test]
fn thread_counts_do_not_change_registry_check_outcomes() {
    for (protocol, inputs) in [("one-round-all-to-all", "zeros"), ("dolev-strong", "ones")] {
        let point = CampaignPoint::new(4, 1)
            .with_adversary(CheckLabel::new(1).send_only().render())
            .with_inputs(inputs);
        let single = registry_check(&point, protocol, 7, 1, None).expect("1-thread check");
        let wide = registry_check(&point, protocol, 7, 8, None).expect("8-thread check");
        assert_eq!(single, wide, "{protocol}: outcome must be thread-invariant");
    }
}

/// Plans a check sweep over the label's `shards` slices, runs every shard
/// manifest through the worker entry point, decodes the wire reports, and
/// merges them back into one [`CheckSweepPoint`].
fn sharded_check(
    label: &CheckLabel,
    protocol: &str,
    inputs: &str,
    shards: usize,
) -> CheckSweepPoint {
    let points: Vec<CampaignPoint> = label
        .slices(shards)
        .into_iter()
        .map(|slice| {
            CampaignPoint::new(4, 1)
                .with_adversary(slice.render())
                .with_inputs(inputs)
        })
        .collect();
    let grid = points.len();
    let spec = SweepSpec::check(points, protocol).worker_threads(2);
    let reports: Vec<ShardReport<CheckSweepPoint>> = plan_shards(&spec, shards)
        .iter()
        .map(|manifest| {
            let wire = run_manifest(manifest).expect("shard runs");
            ShardReport::from_wire(&wire).expect("report decodes")
        })
        .collect();
    let slices: Vec<CheckSweepPoint> = merge_reports(grid, reports)
        .expect("all slices covered")
        .into_iter()
        .map(|outcome| outcome.expect("no simulator failures"))
        .collect();
    merge_check_points(&slices).expect("slices merge")
}

#[test]
fn sharded_wire_sweeps_merge_to_the_unsharded_outcome() {
    // (protocol, inputs, label, expect_refuted): a violating space, an
    // exhaustively-robust space, and a budget-capped violating space.
    let cases = [
        (
            "one-round-all-to-all",
            "zeros",
            CheckLabel::new(1).send_only(),
            true,
        ),
        (
            "dolev-strong",
            "zeros",
            CheckLabel::new(2).send_only(),
            false,
        ),
        (
            "one-round-all-to-all",
            "zeros",
            CheckLabel::new(1).send_only().max_executions(17),
            true,
        ),
    ];
    for (protocol, inputs, label, expect_refuted) in cases {
        let whole = sharded_check(&label, protocol, inputs, 1);
        let merged = sharded_check(&label, protocol, inputs, 3);
        assert_eq!(
            merged, whole,
            "{protocol}: merge(3 shards) must equal run(1 shard)"
        );
        assert_eq!(merged.refuted, expect_refuted, "{protocol}");
        // And both must equal the straight in-process check of the space.
        let point = CampaignPoint::new(4, 1)
            .with_adversary(label.render())
            .with_inputs(inputs);
        let reference = registry_check(&point, protocol, 0, 1, None).expect("in-process check");
        assert_eq!(whole, reference, "{protocol}: wire == in-process");
    }
}

#[test]
fn oversized_spaces_are_refused_not_truncated() {
    // An UpTo corruption bound over a large n explodes combinatorially;
    // the worker must refuse the manifest up front with a typed message
    // rather than half-exploring it.
    let label = CheckLabel::new(1).corruption(CorruptionSpace::UpTo(9));
    let point = CampaignPoint::new(24, 9)
        .with_adversary(label.render())
        .with_inputs("zeros");
    let spec = SweepSpec::check([point], "dolev-strong");
    let manifest = plan_shards(&spec, 1).remove(0);
    let err = run_manifest(&manifest).expect_err("space must be refused");
    assert!(err.contains("corruption space"), "{err}");
}
