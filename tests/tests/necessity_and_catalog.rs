//! The necessity half of Theorem 4 (Lemma 7/8) and the typed landscape
//! catalog, exercised end to end.

use std::collections::BTreeMap;
use std::sync::Arc;

use ba_core::landscape::{analyze_grid, binary_catalog, full_catalog};
use ba_core::reduction::ViaInteractiveConsistency;
use ba_core::refuter::lemma7_refute;
use ba_core::solvability::Gamma;
use ba_core::validity::{
    enumerate_configs, InputConfig, IntervalValidity, SystemParams, UnanimityOrDefault,
    ValidityProperty,
};
use ba_protocols::interactive_consistency::unauthenticated_ic_factory;
use ba_sim::{Bit, ExecutorConfig, ProcessId};

/// A bogus "solution" for interval validity at t ≥ n/2 (where CC fails):
/// Algorithm 2 over unauthenticated IC with Γ = median of the decided
/// vector. Lemma 7 must refute it.
#[test]
fn bogus_interval_median_solution_is_refuted() {
    let (n, t) = (4, 2);
    let params = SystemParams::new(n, t);
    let vp = IntervalValidity::new(3);

    // Γ = median (lower of the two middles), defined on every configuration.
    let table: BTreeMap<InputConfig<u8>, u8> = enumerate_configs(&params, &vp.input_domain())
        .into_iter()
        .map(|c| {
            let mut vals: Vec<u8> = c.iter().map(|(_, v)| *v).collect();
            vals.sort_unstable();
            let median = vals[(vals.len() - 1) / 2];
            (c, median)
        })
        .collect();
    let gamma = Arc::new(Gamma::from_table(table));

    // Unauthenticated IC needs n > 3t; our t here is the *validity* budget.
    // Use the real protocol sized for 1 Byzantine fault but analyze the
    // validity property at t = 2 — the mismatch is irrelevant for Lemma 7,
    // which only runs fully correct and honest-mimic executions.
    let cfg = ExecutorConfig::new(n, t);
    let factory = move |pid: ProcessId| {
        ViaInteractiveConsistency::new(unauthenticated_ic_factory(n, 1, 0u8)(pid), gamma.clone())
    };
    let refutation = lemma7_refute(&cfg, factory, &vp)
        .unwrap()
        .expect("interval validity violates CC at t = n/2; the median rule must fail");
    refutation.verify(&vp, &params).unwrap();
    // The refuting execution's configuration is a genuine strict
    // sub-configuration.
    assert!(refutation.config.len() >= params.min_correct());
    assert!(refutation.config.len() < n);
}

/// A bogus unanimity-or-default "solution" (decide the default whenever the
/// vector is mixed) is refuted because a unanimous sub-configuration pins
/// the other value.
#[test]
fn bogus_unanimity_or_default_solution_is_refuted() {
    let (n, t) = (4, 1);
    let params = SystemParams::new(n, t);
    let vp = UnanimityOrDefault::new(Bit::Zero);
    let table: BTreeMap<InputConfig<Bit>, Bit> = enumerate_configs(&params, &vp.input_domain())
        .into_iter()
        .map(|c| {
            let decided = {
                let mut values = c.iter().map(|(_, v)| *v);
                let first = values.next().expect("non-empty");
                if values.all(|v| v == first) {
                    first
                } else {
                    Bit::Zero
                }
            };
            (c, decided)
        })
        .collect();
    let gamma = Arc::new(Gamma::from_table(table));
    let cfg = ExecutorConfig::new(n, t);
    let book = ba_crypto::Keybook::new(n);
    let factory = move |pid: ProcessId| {
        ViaInteractiveConsistency::new(
            ba_protocols::interactive_consistency::authenticated_ic_factory(
                book.clone(),
                Bit::Zero,
            )(pid),
            gamma.clone(),
        )
    };
    let refutation = lemma7_refute(&cfg, factory, &vp)
        .unwrap()
        .expect("unanimity-or-default violates CC; every claimed solution must be refutable");
    refutation.verify(&vp, &params).unwrap();
}

#[test]
fn catalog_grids_are_consistent_across_parameters() {
    let grid = [
        SystemParams::new(4, 1),
        SystemParams::new(5, 2),
        SystemParams::new(7, 2),
    ];
    let rows = analyze_grid(&grid);
    assert_eq!(rows.len(), grid.len() * full_catalog().len());
    for row in &rows {
        // Theorem 4 internal consistency: unauthenticated ⊆ authenticated.
        assert!(
            !row.unauthenticated_solvable || row.authenticated_solvable,
            "{row}: unauthenticated without authenticated"
        );
        // Trivial problems are always solvable.
        if row.trivial {
            assert!(
                row.authenticated_solvable && row.unauthenticated_solvable,
                "{row}"
            );
        }
        // Unauthenticated solvability of non-trivial problems needs n > 3t.
        if !row.trivial && row.unauthenticated_solvable {
            assert!(row.params.n > 3 * row.params.t, "{row}");
        }
        // Witnesses exactly for CC failures.
        assert_eq!(row.cc, row.witness.is_none(), "{row}");
    }
}

#[test]
fn binary_catalog_spans_the_interesting_outcomes() {
    let params = SystemParams::new(4, 1);
    let rows: Vec<_> = binary_catalog()
        .iter()
        .map(|p| p.analyze(&params))
        .collect();
    assert!(rows.iter().any(|r| r.trivial), "a trivial problem");
    assert!(
        rows.iter().any(|r| !r.trivial && r.cc),
        "a solvable non-trivial problem"
    );
    assert!(rows.iter().any(|r| !r.cc), "an unsolvable problem");
}
