//! EXP-F1 / EXP-F2 / EXP-TAB1: the proof's execution constructions, checked
//! across several real protocols.

use ba_core::lowerbound::{find_critical_round, merge, swap_omission, FamilyRunner, Partition};
use ba_crypto::Keybook;
use ba_protocols::broken::{LeaderEcho, ParanoidEcho};
use ba_protocols::DolevStrong;
use ba_sim::{Bit, ExecutorConfig, ProcessId, Protocol, Round};

fn ecfg(n: usize, t: usize) -> ExecutorConfig {
    ExecutorConfig::new(n, t)
        .with_stop_when_quiescent(false)
        .with_max_rounds(16)
}

/// Table 1 families are valid omission executions for every protocol here.
#[test]
fn table_1_families_are_valid_for_all_protocols() {
    let (n, t) = (8, 2);
    let partition = Partition::paper_default(n, t);

    fn check<P, F>(cfg: ExecutorConfig, factory: F, partition: &Partition)
    where
        P: Protocol<Input = Bit, Output = Bit>,
        F: Fn(ProcessId) -> P,
    {
        let runner = FamilyRunner::new(cfg, &factory, partition.clone());
        for bit in Bit::ALL {
            runner.e0::<P>(bit).unwrap().validate().unwrap();
        }
        for k in 1..=4u64 {
            runner
                .isolated_b::<P>(Round(k), Bit::Zero)
                .unwrap()
                .validate()
                .unwrap();
            runner
                .isolated_c::<P>(Round(k), Bit::Zero)
                .unwrap()
                .validate()
                .unwrap();
        }
        runner
            .isolated_c::<P>(Round(1), Bit::One)
            .unwrap()
            .validate()
            .unwrap();
    }

    check(
        ecfg(n, t),
        DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero),
        &partition,
    );
    check(ecfg(n, t), |_| LeaderEcho::new(ProcessId(0)), &partition);
    check(ecfg(n, t), |_| ParanoidEcho::new(), &partition);
}

/// Figure 1 (EXP-F1): divergence from the fault-free execution propagates
/// no faster than the paper's anatomy — the isolated group's sends diverge
/// from round R + 1 at the earliest, everyone else's from R + 2.
#[test]
fn figure_1_divergence_respects_isolation_anatomy() {
    let (n, t) = (8, 2);
    let partition = Partition::paper_default(n, t);
    let factory = |_| ParanoidEcho::new();
    let runner = FamilyRunner::new(ecfg(n, t), &factory, partition.clone());
    let e0 = runner.e0::<ParanoidEcho>(Bit::Zero).unwrap();
    for r in 1..=3u64 {
        let eb = runner
            .isolated_b::<ParanoidEcho>(Round(r), Bit::Zero)
            .unwrap();
        for pid in ProcessId::all(n) {
            if let Some(div) = e0.first_send_divergence(&eb, pid) {
                if partition.b().contains(&pid) {
                    assert!(div.0 > r, "{pid} diverged at {div} < R+1 (R = {r})");
                } else {
                    assert!(div.0 >= r + 2, "{pid} diverged at {div} < R+2 (R = {r})");
                }
            }
        }
    }
}

/// Lemma 16 (EXP-F2 rows 2 & 4): in the merged execution, isolated groups
/// cannot distinguish it from their originals and decide identically —
/// across protocols and isolation offsets.
#[test]
fn merged_execution_rows_match_originals() {
    let (n, t) = (8, 2);
    let partition = Partition::paper_default(n, t);
    let cfg = ecfg(n, t);

    let book = Keybook::new(n);
    let factory = DolevStrong::factory(book, ProcessId(0), Bit::Zero);
    let runner = FamilyRunner::new(cfg, &factory, partition.clone());
    for (kb, kc, b) in [
        (1u64, 1u64, Bit::One),
        (2, 2, Bit::Zero),
        (3, 2, Bit::Zero),
        (2, 3, Bit::Zero),
    ] {
        let eb = runner
            .isolated_b::<DolevStrong<Bit>>(Round(kb), Bit::Zero)
            .unwrap();
        let ec = runner.isolated_c::<DolevStrong<Bit>>(Round(kc), b).unwrap();
        let merged = merge(
            &cfg,
            &factory,
            &partition,
            &eb,
            Round(kb),
            &ec,
            Round(kc),
            b,
        )
        .unwrap();
        merged.validate().unwrap();
        for pid in partition.b() {
            assert!(merged.indistinguishable_to(&eb, *pid));
            assert_eq!(merged.decision_of(*pid), eb.decision_of(*pid));
        }
        for pid in partition.c() {
            assert!(merged.indistinguishable_to(&ec, *pid));
            assert_eq!(merged.decision_of(*pid), ec.decision_of(*pid));
        }
    }
}

/// Lemma 15: swap_omission preserves indistinguishability (hence decisions)
/// for every process, and produces a valid execution whenever the blamed
/// set fits the fault budget.
#[test]
fn swap_preserves_everything_observable() {
    let (n, t) = (8, 4);
    let partition = Partition::paper_default(n, t);
    let factory = |_| LeaderEcho::new(ProcessId(0));
    let runner = FamilyRunner::new(ecfg(n, t), &factory, partition.clone());
    let eb = runner
        .isolated_b::<LeaderEcho>(Round(1), Bit::Zero)
        .unwrap();
    for pivot in partition.b() {
        let swapped = swap_omission(&eb, *pivot).unwrap();
        swapped.validate().unwrap();
        assert!(swapped.is_correct(*pivot));
        for pid in ProcessId::all(n) {
            assert!(eb.indistinguishable_to(&swapped, pid));
            assert_eq!(eb.decision_of(pid), swapped.decision_of(pid));
        }
    }
}

/// Lemma 4 (EXP-L4): ParanoidEcho has the default-1 structure with critical
/// round R = 1; sender-driven protocols have no such structure.
#[test]
fn critical_round_structure_detection() {
    let (n, t) = (8, 2);
    let fcfg = ba_core::lowerbound::FalsifierConfig::new(n, t);

    let report = find_critical_round(&fcfg, |_| ParanoidEcho::new()).unwrap();
    let report = report.expect("ParanoidEcho has the default-bit structure");
    assert!(!report.flipped);
    assert_eq!(report.default_bit_canonical, Bit::One);
    assert_eq!(report.critical_round, Round(1));
    assert!(report.r_max >= Round(3));

    // Dolev-Strong weak consensus: A's decision tracks the sender's
    // proposal, so E_B(1)_0 decides 0 in the canonical orientation and 0
    // again after flipping — no critical-round structure.
    let book = Keybook::new(n);
    let report =
        find_critical_round(&fcfg, DolevStrong::factory(book, ProcessId(0), Bit::Zero)).unwrap();
    assert!(report.is_none());
}

/// The standalone Lemma 2 engine: applied directly to an isolation
/// execution of a star-topology protocol, it produces a verified violation
/// without running the whole falsifier.
#[test]
fn lemma2_engine_standalone() {
    use ba_core::lowerbound::lemma2_violation;
    let (n, t) = (10, 4);
    let partition = Partition::paper_default(n, t);
    let factory = |_| LeaderEcho::new(ProcessId(0));
    let runner = FamilyRunner::new(ecfg(n, t), &factory, partition.clone());
    let eb = runner
        .isolated_b::<LeaderEcho>(Round(1), Bit::Zero)
        .unwrap();
    // Correct processes (A ∪ C) decide 0; B misses the verdict and falls
    // back to 1: Lemma 2 converts that into a real violation.
    let cert = lemma2_violation(&eb, partition.b(), Bit::Zero, &[], "standalone")
        .expect("LeaderEcho is refutable by Lemma 2 alone");
    cert.verify().unwrap();
    assert!(matches!(
        cert.kind,
        ba_core::lowerbound::ViolationKind::Agreement { .. }
    ));
    // And it correctly reports nothing for protocols whose isolated group
    // agrees (Dolev-Strong decides the default, same as... the sender value
    // here differs, but every B member omitted too much for a swap).
    let book = Keybook::new(n);
    let ds_factory = DolevStrong::factory(book, ProcessId(0), Bit::Zero);
    let runner = FamilyRunner::new(ecfg(n, t), &ds_factory, partition.clone());
    let ec = runner
        .isolated_c::<DolevStrong<Bit>>(Round(1), Bit::One)
        .unwrap();
    assert!(lemma2_violation(&ec, partition.c(), Bit::One, &[], "standalone").is_none());
}

/// The mergeable relation (Definition 2) drives which pairs merge: a
/// non-mergeable pair must be rejected even when everything else lines up.
#[test]
fn non_mergeable_pairs_are_rejected_for_real_protocols() {
    let (n, t) = (8, 2);
    let partition = Partition::paper_default(n, t);
    let cfg = ecfg(n, t);
    let factory = |_| ParanoidEcho::new();
    let runner = FamilyRunner::new(cfg, &factory, partition.clone());
    let eb = runner
        .isolated_b::<ParanoidEcho>(Round(3), Bit::Zero)
        .unwrap();
    let ec = runner
        .isolated_c::<ParanoidEcho>(Round(1), Bit::Zero)
        .unwrap();
    let err = merge(
        &cfg,
        factory,
        &partition,
        &eb,
        Round(3),
        &ec,
        Round(1),
        Bit::Zero,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        ba_core::lowerbound::MergeError::NotMergeable { .. }
    ));
}
