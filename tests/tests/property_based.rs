//! Property-based tests (proptest) over the model's invariants.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use ba_core::lowerbound::swap_omission;
use ba_core::reduction::ViaInteractiveConsistency;
use ba_core::solvability::check_containment_condition;
use ba_core::validity::{
    containment_set, enumerate_configs, InputConfig, StrongValidity, SystemParams,
    ValidityProperty, WeakValidity,
};
use ba_crypto::Keybook;
use ba_protocols::interactive_consistency::authenticated_ic_factory;
use ba_protocols::DolevStrong;
use ba_sim::{
    run_omission, Bit, ExecutorConfig, NoFaults, ProcessId, RandomOmissionPlan,
};

/// Strategy: system sizes with a random fault set and proposals.
fn system() -> impl Strategy<Value = (usize, usize, Vec<bool>, Vec<bool>, u64)> {
    (4usize..=8)
        .prop_flat_map(|n| {
            (Just(n), 1usize..n).prop_flat_map(move |(n, t)| {
                (
                    Just(n),
                    Just(t),
                    proptest::collection::vec(any::<bool>(), n), // proposals
                    proptest::collection::vec(any::<bool>(), n), // faulty mask
                    any::<u64>(),                                 // plan seed
                )
            })
        })
        .prop_map(|(n, t, props, mask, seed)| (n, t, props, mask, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any random omission plan against Dolev-Strong yields an execution
    /// satisfying the five guarantees, and Agreement holds among correct
    /// processes.
    #[test]
    fn random_omission_executions_are_valid_and_agree(
        (n, t, props, mask, seed) in system()
    ) {
        let faulty: BTreeSet<ProcessId> = ProcessId::all(n)
            .zip(&mask)
            .filter(|(_, m)| **m)
            .map(|(p, _)| p)
            .take(t)
            .collect();
        let proposals: Vec<Bit> = props.iter().map(|b| Bit::from(*b)).collect();
        let cfg = ExecutorConfig::new(n, t);
        let book = Keybook::new(n);
        let mut plan = RandomOmissionPlan::new(faulty.iter().copied(), 0.3, 0.3, seed);
        let exec = run_omission(
            &cfg,
            DolevStrong::factory(book, ProcessId(0), Bit::Zero),
            &proposals,
            &faulty,
            &mut plan,
        ).unwrap();
        prop_assert_eq!(exec.validate(), Ok(()));
        let decisions: BTreeSet<_> = exec.correct().map(|p| exec.decision_of(p).cloned()).collect();
        prop_assert_eq!(decisions.len(), 1, "agreement violated");
        prop_assert!(decisions.iter().all(Option::is_some), "termination violated");
    }

    /// swap_omission never changes what any process observes: proposals,
    /// inboxes, decisions are all preserved, and the result revalidates.
    #[test]
    fn swap_preserves_observations((n, t, props, mask, seed) in system()) {
        let faulty: BTreeSet<ProcessId> = ProcessId::all(n)
            .zip(&mask)
            .filter(|(_, m)| **m)
            .map(|(p, _)| p)
            .take(t)
            .collect();
        prop_assume!(!faulty.is_empty());
        let proposals: Vec<Bit> = props.iter().map(|b| Bit::from(*b)).collect();
        let cfg = ExecutorConfig::new(n, t);
        let book = Keybook::new(n);
        let mut plan = RandomOmissionPlan::new(faulty.iter().copied(), 0.0, 0.5, seed);
        let exec = run_omission(
            &cfg,
            DolevStrong::factory(book, ProcessId(0), Bit::Zero),
            &proposals,
            &faulty,
            &mut plan,
        ).unwrap();
        let pivot = *faulty.iter().next().unwrap();
        if let Ok(swapped) = swap_omission(&exec, pivot) {
            prop_assert_eq!(swapped.validate(), Ok(()));
            prop_assert!(swapped.is_correct(pivot));
            for pid in ProcessId::all(n) {
                prop_assert!(exec.indistinguishable_to(&swapped, pid));
                prop_assert_eq!(exec.decision_of(pid), swapped.decision_of(pid));
            }
        }
    }

    /// Containment is a partial order and `containment_set` returns exactly
    /// the contained configurations.
    #[test]
    fn containment_set_is_sound_and_complete(
        n in 3usize..=5,
        t in 1usize..=2,
        idx in any::<prop::sample::Index>(),
    ) {
        prop_assume!(t < n);
        let params = SystemParams::new(n, t);
        let all = enumerate_configs(&params, &[Bit::Zero, Bit::One]);
        let c = all[idx.index(all.len())].clone();
        let cnt = containment_set(&params, &c);
        // Sound: everything returned is contained.
        for sub in &cnt {
            prop_assert!(c.contains(sub));
        }
        // Complete: every enumerated configuration contained by c is
        // returned.
        for other in &all {
            if c.contains(other) {
                prop_assert!(cnt.contains(other), "missing {other:?}");
            }
        }
        // Reflexive.
        prop_assert!(cnt.contains(&c));
    }

    /// Γ(c) is admissible in every configuration c contains — the defining
    /// property of the containment condition.
    #[test]
    fn gamma_values_are_admissible_in_contained_configs(
        n in 3usize..=4,
        t in 1usize..=2,
        idx in any::<prop::sample::Index>(),
    ) {
        prop_assume!(t < n);
        let params = SystemParams::new(n, t);
        let vp = WeakValidity::binary();
        let gamma = check_containment_condition(&vp, &params).gamma().cloned().unwrap();
        let all = enumerate_configs(&params, &vp.input_domain());
        let c = &all[idx.index(all.len())];
        let v = gamma.apply(c).unwrap();
        for sub in containment_set(&params, c) {
            prop_assert!(vp.admissible(&params, &sub).contains(v));
        }
    }

    /// Algorithm 2 over authenticated IC decides admissible values for
    /// random proposal vectors (strong consensus instance).
    #[test]
    fn algorithm2_decides_admissibly(props in proptest::collection::vec(any::<bool>(), 4)) {
        let (n, t) = (4, 1);
        let params = SystemParams::new(n, t);
        let vp = StrongValidity::binary();
        let gamma = Arc::new(check_containment_condition(&vp, &params).gamma().cloned().unwrap());
        let proposals: Vec<Bit> = props.iter().map(|b| Bit::from(*b)).collect();
        let book = Keybook::new(n);
        let cfg = ExecutorConfig::new(n, t);
        let exec = run_omission(
            &cfg,
            move |pid| ViaInteractiveConsistency::new(
                authenticated_ic_factory(book.clone(), Bit::Zero)(pid),
                gamma.clone(),
            ),
            &proposals,
            &BTreeSet::new(),
            &mut NoFaults,
        ).unwrap();
        let all_ids: Vec<ProcessId> = ProcessId::all(n).collect();
        let decided = exec.unanimous_decision(all_ids.iter()).expect("agreement");
        let config = InputConfig::full(proposals);
        prop_assert!(vp.admissible(&params, &config).contains(&decided));
    }

    /// Message complexity only counts correct senders, and is monotone
    /// under growing the fault set (fixing the trace).
    #[test]
    fn message_complexity_accounting((n, t, props, mask, seed) in system()) {
        let faulty: BTreeSet<ProcessId> = ProcessId::all(n)
            .zip(&mask)
            .filter(|(_, m)| **m)
            .map(|(p, _)| p)
            .take(t)
            .collect();
        let proposals: Vec<Bit> = props.iter().map(|b| Bit::from(*b)).collect();
        let cfg = ExecutorConfig::new(n, t);
        let book = Keybook::new(n);
        let mut plan = RandomOmissionPlan::new(faulty.iter().copied(), 0.2, 0.2, seed);
        let exec = run_omission(
            &cfg,
            DolevStrong::factory(book, ProcessId(0), Bit::Zero),
            &proposals,
            &faulty,
            &mut plan,
        ).unwrap();
        let by_hand: u64 = exec
            .correct()
            .map(|p| exec.record(p).fragments.iter().map(|f| f.sent.len() as u64).sum::<u64>())
            .sum();
        prop_assert_eq!(exec.message_complexity(), by_hand);
        prop_assert!(exec.message_complexity() <= exec.total_messages());
    }
}
