//! Cross-protocol adversarial coverage: crash-during-protocol behaviors,
//! replay storms, and combined strategies against every correct protocol in
//! the landscape.

use std::collections::BTreeMap;

use ba_crypto::Keybook;
use ba_protocols::interactive_consistency::authenticated_ic_factory;
use ba_protocols::{DolevStrong, EigConsensus, PhaseKing};
use ba_sim::{
    run_byzantine, Bit, ByzantineBehavior, ExecutorConfig, FollowThenCrash, ProcessId,
    ReplayByzantine, Round,
};
use ba_tests::assert_agreement;

/// Dolev-Strong under a sender that crashes mid-broadcast (after relaying
/// round 1): everyone still agrees (on the value — it was already signed
/// and out).
#[test]
fn dolev_strong_sender_crash_after_round_one() {
    let (n, t) = (5, 2);
    let book = Keybook::new(n);
    let cfg = ExecutorConfig::new(n, t);
    for crash_at in 2..=4u64 {
        let behaviors: BTreeMap<_, Box<dyn ByzantineBehavior<Bit, _>>> = [(
            ProcessId(0),
            Box::new(FollowThenCrash::new(
                DolevStrong::new(book.clone(), book.keychain(ProcessId(0)), ProcessId(0), Bit::Zero),
                Round(crash_at),
            )) as Box<_>,
        )]
        .into_iter()
        .collect();
        let exec = run_byzantine(
            &cfg,
            DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
            &[Bit::One; 5],
            behaviors,
        )
        .unwrap();
        exec.validate().unwrap();
        let decided = assert_agreement(&exec);
        // The sender's signed value escaped in round 1, so the decision is
        // the broadcast value.
        assert_eq!(decided, Bit::One, "crash at {crash_at}");
    }
}

/// Dolev-Strong sender that crashes *before* sending anything is
/// indistinguishable from a silent sender: default decided.
#[test]
fn dolev_strong_sender_crash_before_sending() {
    let (n, t) = (5, 2);
    let book = Keybook::new(n);
    let cfg = ExecutorConfig::new(n, t);
    let behaviors: BTreeMap<_, Box<dyn ByzantineBehavior<Bit, _>>> = [(
        ProcessId(0),
        Box::new(FollowThenCrash::new(
            DolevStrong::new(book.clone(), book.keychain(ProcessId(0)), ProcessId(0), Bit::Zero),
            Round(1),
        )) as Box<_>,
    )]
    .into_iter()
    .collect();
    let exec = run_byzantine(
        &cfg,
        DolevStrong::factory(book, ProcessId(0), Bit::Zero),
        &[Bit::One; 5],
        behaviors,
    )
    .unwrap();
    assert_eq!(assert_agreement(&exec), Bit::Zero);
}

/// Phase King with processes crashing at every possible phase boundary.
#[test]
fn phase_king_crash_sweep() {
    let (n, t) = (7, 2);
    let cfg = ExecutorConfig::new(n, t);
    for crash_at in 1..=PhaseKing::total_rounds(t) {
        let behaviors: BTreeMap<_, Box<dyn ByzantineBehavior<Bit, _>>> = [
            (
                ProcessId(0), // king of phase 1
                Box::new(FollowThenCrash::new(PhaseKing::new(n, t), Round(crash_at)))
                    as Box<dyn ByzantineBehavior<Bit, _>>,
            ),
            (
                ProcessId(1), // king of phase 2
                Box::new(FollowThenCrash::new(PhaseKing::new(n, t), Round(crash_at.max(2) - 1)))
                    as Box<_>,
            ),
        ]
        .into_iter()
        .collect();
        let exec = run_byzantine(
            &cfg,
            |_| PhaseKing::new(n, t),
            &[Bit::One, Bit::Zero, Bit::One, Bit::Zero, Bit::One, Bit::Zero, Bit::One],
            behaviors,
        )
        .unwrap();
        exec.validate().unwrap();
        assert_agreement(&exec);
    }
}

/// Replay storms against every correct protocol: stale messages must never
/// break agreement.
#[test]
fn replay_storm_against_the_landscape() {
    let (n, t) = (5, 1);
    let cfg = ExecutorConfig::new(n, t);
    let book = Keybook::new(n);

    for seed in 0..8u64 {
        // Dolev-Strong.
        let behaviors: BTreeMap<_, Box<dyn ByzantineBehavior<Bit, _>>> =
            [(ProcessId(4), Box::new(ReplayByzantine::new(seed, 3)) as Box<_>)]
                .into_iter()
                .collect();
        let exec = run_byzantine(
            &cfg,
            DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
            &[Bit::One; 5],
            behaviors,
        )
        .unwrap();
        assert_eq!(assert_agreement(&exec), Bit::One, "DS, seed {seed}");

        // EIG consensus.
        let behaviors: BTreeMap<_, Box<dyn ByzantineBehavior<Bit, _>>> =
            [(ProcessId(4), Box::new(ReplayByzantine::new(seed, 3)) as Box<_>)]
                .into_iter()
                .collect();
        let exec = run_byzantine(
            &cfg,
            |_| EigConsensus::new(n, t, Bit::Zero),
            &[Bit::One; 5],
            behaviors,
        )
        .unwrap();
        assert_eq!(assert_agreement(&exec), Bit::One, "EIG, seed {seed}");

        // Phase King.
        let behaviors: BTreeMap<_, Box<dyn ByzantineBehavior<Bit, _>>> =
            [(ProcessId(4), Box::new(ReplayByzantine::new(seed, 3)) as Box<_>)]
                .into_iter()
                .collect();
        let exec =
            run_byzantine(&cfg, |_| PhaseKing::new(n, t), &[Bit::One; 5], behaviors).unwrap();
        assert_eq!(assert_agreement(&exec), Bit::One, "PK, seed {seed}");

        // Authenticated IC: IC-validity for the correct slots.
        let behaviors: BTreeMap<_, Box<dyn ByzantineBehavior<Bit, _>>> =
            [(ProcessId(4), Box::new(ReplayByzantine::new(seed, 3)) as Box<_>)]
                .into_iter()
                .collect();
        let exec = run_byzantine(
            &cfg,
            authenticated_ic_factory(book.clone(), Bit::Zero),
            &[Bit::One; 5],
            behaviors,
        )
        .unwrap();
        let vec = assert_agreement(&exec);
        for i in 0..4 {
            assert_eq!(vec[i], Bit::One, "IC slot {i}, seed {seed}");
        }
    }
}

/// Combined adversaries at full budget: silent + replay against Dolev-Strong
/// with a dishonest majority (t = n − 1 is legal for authenticated
/// broadcast).
#[test]
fn dolev_strong_dishonest_majority() {
    let (n, t) = (4, 3);
    let book = Keybook::new(n);
    let cfg = ExecutorConfig::new(n, t);
    let behaviors: BTreeMap<_, Box<dyn ByzantineBehavior<Bit, _>>> = [
        (ProcessId(1), Box::new(ba_sim::SilentByzantine) as Box<dyn ByzantineBehavior<Bit, _>>),
        (ProcessId(2), Box::new(ReplayByzantine::new(3, 2)) as Box<_>),
        (ProcessId(3), Box::new(ReplayByzantine::new(4, 2)) as Box<_>),
    ]
    .into_iter()
    .collect();
    let exec = run_byzantine(
        &cfg,
        DolevStrong::factory(book, ProcessId(0), Bit::Zero),
        &[Bit::One; 4],
        behaviors,
    )
    .unwrap();
    exec.validate().unwrap();
    // p0 is the only correct process; it must decide its own broadcast.
    assert_eq!(exec.decision_of(ProcessId(0)), Some(&Bit::One));
}
