//! Cross-protocol adversarial coverage: crash-during-protocol behaviors,
//! replay storms, combined strategies, and mixed Byzantine+omission
//! assignments against every correct protocol in the landscape.

use ba_crypto::Keybook;
use ba_protocols::interactive_consistency::authenticated_ic_factory;
use ba_protocols::{DolevStrong, EigConsensus, PhaseKing};
use ba_sim::{
    Adversary, Bit, FaultMode, FollowThenCrash, IsolationPlan, ProcessId, ReplayByzantine, Round,
    Scenario, SilentByzantine,
};
use ba_tests::assert_agreement;

/// Dolev-Strong under a sender that crashes mid-broadcast (after relaying
/// round 1): everyone still agrees (on the value — it was already signed
/// and out).
#[test]
fn dolev_strong_sender_crash_after_round_one() {
    let (n, t) = (5, 2);
    let book = Keybook::new(n);
    for crash_at in 2..=4u64 {
        let exec = Scenario::new(n, t)
            .protocol(DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(
                ProcessId(0),
                FollowThenCrash::new(
                    DolevStrong::new(
                        book.clone(),
                        book.keychain(ProcessId(0)),
                        ProcessId(0),
                        Bit::Zero,
                    ),
                    Round(crash_at),
                ),
            ))
            .run()
            .unwrap();
        exec.validate().unwrap();
        let decided = assert_agreement(&exec);
        // The sender's signed value escaped in round 1, so the decision is
        // the broadcast value.
        assert_eq!(decided, Bit::One, "crash at {crash_at}");
    }
}

/// Dolev-Strong sender that crashes *before* sending anything is
/// indistinguishable from a silent sender: default decided.
#[test]
fn dolev_strong_sender_crash_before_sending() {
    let (n, t) = (5, 2);
    let book = Keybook::new(n);
    let exec = Scenario::new(n, t)
        .protocol(DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero))
        .uniform_input(Bit::One)
        .adversary(Adversary::one_byzantine(
            ProcessId(0),
            FollowThenCrash::new(
                DolevStrong::new(
                    book.clone(),
                    book.keychain(ProcessId(0)),
                    ProcessId(0),
                    Bit::Zero,
                ),
                Round(1),
            ),
        ))
        .run()
        .unwrap();
    assert_eq!(assert_agreement(&exec), Bit::Zero);
}

/// Phase King with processes crashing at every possible phase boundary.
#[test]
fn phase_king_crash_sweep() {
    let (n, t) = (7, 2);
    for crash_at in 1..=PhaseKing::total_rounds(t) {
        let exec = Scenario::new(n, t)
            .protocol(move |_| PhaseKing::new(n, t))
            .inputs([
                Bit::One,
                Bit::Zero,
                Bit::One,
                Bit::Zero,
                Bit::One,
                Bit::Zero,
                Bit::One,
            ])
            .adversary(Adversary::byzantine([
                (
                    ProcessId(0), // king of phase 1
                    Box::new(FollowThenCrash::new(PhaseKing::new(n, t), Round(crash_at))) as _,
                ),
                (
                    ProcessId(1), // king of phase 2
                    Box::new(FollowThenCrash::new(
                        PhaseKing::new(n, t),
                        Round(crash_at.max(2) - 1),
                    )) as _,
                ),
            ]))
            .run()
            .unwrap();
        exec.validate().unwrap();
        assert_agreement(&exec);
    }
}

/// Replay storms against every correct protocol: stale messages must never
/// break agreement.
#[test]
fn replay_storm_against_the_landscape() {
    let (n, t) = (5, 1);
    let book = Keybook::new(n);

    for seed in 0..8u64 {
        // Dolev-Strong.
        let exec = Scenario::new(n, t)
            .protocol(DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(
                ProcessId(4),
                ReplayByzantine::new(seed, 3),
            ))
            .run()
            .unwrap();
        assert_eq!(assert_agreement(&exec), Bit::One, "DS, seed {seed}");

        // EIG consensus.
        let exec = Scenario::new(n, t)
            .protocol(move |_| EigConsensus::new(n, t, Bit::Zero))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(
                ProcessId(4),
                ReplayByzantine::new(seed, 3),
            ))
            .run()
            .unwrap();
        assert_eq!(assert_agreement(&exec), Bit::One, "EIG, seed {seed}");

        // Phase King.
        let exec = Scenario::new(n, t)
            .protocol(move |_| PhaseKing::new(n, t))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(
                ProcessId(4),
                ReplayByzantine::new(seed, 3),
            ))
            .run()
            .unwrap();
        assert_eq!(assert_agreement(&exec), Bit::One, "PK, seed {seed}");

        // Authenticated IC: IC-validity for the correct slots.
        let exec = Scenario::new(n, t)
            .protocol(authenticated_ic_factory(book.clone(), Bit::Zero))
            .uniform_input(Bit::One)
            .adversary(Adversary::one_byzantine(
                ProcessId(4),
                ReplayByzantine::new(seed, 3),
            ))
            .run()
            .unwrap();
        let vec = assert_agreement(&exec);
        for (i, slot) in vec.iter().enumerate().take(4) {
            assert_eq!(*slot, Bit::One, "IC slot {i}, seed {seed}");
        }
    }
}

/// Combined adversaries at full budget: silent + replay against Dolev-Strong
/// with a dishonest majority (t = n − 1 is legal for authenticated
/// broadcast).
#[test]
fn dolev_strong_dishonest_majority() {
    let (n, t) = (4, 3);
    let book = Keybook::new(n);
    let exec = Scenario::new(n, t)
        .protocol(DolevStrong::factory(book, ProcessId(0), Bit::Zero))
        .uniform_input(Bit::One)
        .adversary(Adversary::byzantine([
            (ProcessId(1), Box::new(SilentByzantine) as _),
            (ProcessId(2), Box::new(ReplayByzantine::new(3, 2)) as _),
            (ProcessId(3), Box::new(ReplayByzantine::new(4, 2)) as _),
        ]))
        .run()
        .unwrap();
    exec.validate().unwrap();
    // p0 is the only correct process; it must decide its own broadcast.
    assert_eq!(exec.decision_of(ProcessId(0)), Some(&Bit::One));
}

/// A **mixed** per-process fault assignment — one replay-Byzantine process
/// *and* one omission-isolated process in the same execution — which the
/// legacy `run_omission` / `run_byzantine` split could not express at all.
#[test]
fn mixed_byzantine_and_omission_faults_in_one_execution() {
    let (n, t) = (6, 2);
    let book = Keybook::new(n);
    let exec = Scenario::new(n, t)
        .protocol(DolevStrong::factory(book, ProcessId(0), Bit::Zero))
        .uniform_input(Bit::One)
        .adversary(Adversary::mixed(
            [(ProcessId(5), Box::new(ReplayByzantine::new(9, 3)) as _)],
            [ProcessId(4)],
            IsolationPlan::new([ProcessId(4)], Round(2)),
        ))
        .run()
        .unwrap();
    exec.validate().unwrap();
    assert_eq!(exec.mode, FaultMode::Mixed);
    assert_eq!(
        exec.faulty,
        [ProcessId(4), ProcessId(5)].into_iter().collect()
    );
    // The correct processes (p0..p3) still agree on the broadcast value
    // despite simultaneous replay noise and an isolated receiver.
    for pid in [ProcessId(0), ProcessId(1), ProcessId(2), ProcessId(3)] {
        assert!(exec.is_correct(pid));
        assert_eq!(exec.decision_of(pid), Some(&Bit::One), "{pid}");
    }
    // The isolated process receive-omitted outside traffic from round 2 on.
    assert!(exec
        .record(ProcessId(4))
        .all_receive_omitted()
        .next()
        .is_some());
}
