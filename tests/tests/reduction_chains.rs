//! EXP-TAB2 / EXP-T3 / EXP-C1: Algorithm 1 turns solutions of harder
//! problems into weak consensus at zero message cost, transferring the
//! Ω(t²) bound to every non-trivial problem; and the full composition
//! Algorithm 2 ∘ Algorithm 1 closes the circle.

use std::sync::Arc;

use ba_core::lowerbound::{falsify, probe_weak_consensus, FalsifierConfig, ProbeOutcome, Verdict};
use ba_core::reduction::{
    derive_reduction_inputs, ReductionInputs, ViaInteractiveConsistency, WeakFromAgreement,
};
use ba_core::solvability::check_containment_condition;
use ba_core::validity::{IcValidity, InputConfig, SenderValidity, StrongValidity, SystemParams};
use ba_crypto::Keybook;
use ba_protocols::interactive_consistency::authenticated_ic_factory;
use ba_protocols::{DolevStrong, EigConsensus, PhaseKing};
use ba_sim::{Bit, ExecutorConfig, ProcessId, Scenario};
use ba_tests::uniform;

#[test]
fn weak_consensus_from_phase_king_zero_cost() {
    let (n, t) = (4, 1);
    let cfg = ExecutorConfig::new(n, t);
    let inputs =
        derive_reduction_inputs(&cfg, |_| PhaseKing::new(n, t), &StrongValidity::binary()).unwrap();
    for bit in Bit::ALL {
        let wrapped = Scenario::config(&cfg)
            .protocol(|_| WeakFromAgreement::new(PhaseKing::new(n, t), inputs.clone()))
            .inputs(uniform(n, bit))
            .run()
            .unwrap();
        assert!(wrapped.all_correct_decided(bit));
        // Zero added messages (Lemma 18): compare against the bare run on
        // the corresponding configuration.
        let bare_proposals = if bit == Bit::Zero {
            &inputs.c0
        } else {
            &inputs.c1
        };
        let bare = Scenario::config(&cfg)
            .protocol(|_| PhaseKing::new(n, t))
            .inputs(bare_proposals.iter().copied())
            .run()
            .unwrap();
        assert_eq!(wrapped.message_complexity(), bare.message_complexity());
    }
}

#[test]
fn weak_consensus_from_eig_strong_consensus() {
    let (n, t) = (4, 1);
    let cfg = ExecutorConfig::new(n, t);
    let inputs = derive_reduction_inputs(
        &cfg,
        |_| EigConsensus::new(n, t, Bit::Zero),
        &StrongValidity::binary(),
    )
    .unwrap();
    for bit in Bit::ALL {
        let exec = Scenario::config(&cfg)
            .protocol(|_| {
                WeakFromAgreement::new(EigConsensus::new(n, t, Bit::Zero), inputs.clone())
            })
            .inputs(uniform(n, bit))
            .run()
            .unwrap();
        assert!(exec.all_correct_decided(bit));
    }
}

#[test]
fn weak_consensus_from_byzantine_broadcast() {
    let (n, t) = (5, 2);
    let cfg = ExecutorConfig::new(n, t);
    let book = Keybook::new(n);
    let vp = SenderValidity::new(ProcessId(0), vec![Bit::Zero, Bit::One]);
    let inputs = derive_reduction_inputs(
        &cfg,
        DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero),
        &vp,
    )
    .unwrap();
    for bit in Bit::ALL {
        let book = book.clone();
        let inputs_c = inputs.clone();
        let exec = Scenario::config(&cfg)
            .protocol(move |pid| {
                WeakFromAgreement::new(
                    DolevStrong::factory(book.clone(), ProcessId(0), Bit::Zero)(pid),
                    inputs_c.clone(),
                )
            })
            .inputs(uniform(n, bit))
            .run()
            .unwrap();
        assert!(exec.all_correct_decided(bit));
    }
}

#[test]
fn weak_consensus_from_interactive_consistency() {
    // IC's decision domain is Vec<Bit> ≠ Bit: exactly the case that needs
    // the generic Output type of Algorithm 1.
    let (n, t) = (4, 1);
    let cfg = ExecutorConfig::new(n, t);
    let book = Keybook::new(n);
    let vp = IcValidity::new(vec![Bit::Zero, Bit::One]);
    let inputs =
        derive_reduction_inputs(&cfg, authenticated_ic_factory(book.clone(), Bit::Zero), &vp)
            .unwrap();
    assert_ne!(inputs.v0, inputs.v1);
    for bit in Bit::ALL {
        let book = book.clone();
        let inputs_c = inputs.clone();
        let exec = Scenario::config(&cfg)
            .protocol(move |pid| {
                WeakFromAgreement::new(
                    authenticated_ic_factory(book.clone(), Bit::Zero)(pid),
                    inputs_c.clone(),
                )
            })
            .inputs(uniform(n, bit))
            .run()
            .unwrap();
        assert!(exec.all_correct_decided(bit));
    }
}

#[test]
fn theorem_3_composition_wrapped_protocols_face_the_falsifier() {
    // The bound transfer, demonstrated operationally: wrap Phase King into
    // weak consensus via Algorithm 1 and hand it to the falsifier. Phase
    // King is quadratic, so it survives — but the *same wrapper* applied to
    // a cheap "agreement" protocol is refuted, certificate included.
    let (n, t) = (8, 2);
    let cfg = ExecutorConfig::new(n, t);
    let inputs =
        derive_reduction_inputs(&cfg, |_| PhaseKing::new(n, t), &StrongValidity::binary()).unwrap();
    let fcfg = FalsifierConfig::new(n, t);
    let verdict = falsify(&fcfg, |_| {
        WeakFromAgreement::new(PhaseKing::new(n, t), inputs.clone())
    })
    .unwrap();
    match verdict {
        Verdict::Survived(report) => {
            assert!(report.max_message_complexity >= report.paper_bound);
        }
        Verdict::Violation(cert) => {
            panic!(
                "wrapped Phase King wrongly refuted: {:?}\n{:#?}",
                cert.kind, cert.provenance
            )
        }
    }
}

#[test]
fn full_circle_algorithm2_then_algorithm1() {
    // Close the loop of the paper's §4–§5: build strong consensus from IC
    // (Algorithm 2), then build weak consensus from that strong consensus
    // (Algorithm 1), and check the result solves weak consensus under
    // random omission faults.
    let (n, t) = (4, 1);
    let params = SystemParams::new(n, t);
    let vp = StrongValidity::binary();
    let gamma = Arc::new(
        check_containment_condition(&vp, &params)
            .gamma()
            .cloned()
            .unwrap(),
    );
    let book = Keybook::new(n);
    let cfg = ExecutorConfig::new(n, t);

    let strong_factory = {
        let book = book.clone();
        let gamma = gamma.clone();
        move |pid: ProcessId| {
            ViaInteractiveConsistency::new(
                authenticated_ic_factory(book.clone(), Bit::Zero)(pid),
                gamma.clone(),
            )
        }
    };
    let inputs = derive_reduction_inputs(&cfg, &strong_factory, &vp).unwrap();

    // Validate weak consensus behavior of the composed stack.
    for bit in Bit::ALL {
        let strong_factory = strong_factory.clone();
        let inputs_c = inputs.clone();
        let exec = Scenario::config(&cfg)
            .protocol(move |pid| WeakFromAgreement::new(strong_factory(pid), inputs_c.clone()))
            .inputs(uniform(n, bit))
            .run()
            .unwrap();
        assert!(exec.all_correct_decided(bit));
    }

    // And under randomized omission faults it behaves like weak consensus.
    let strong_factory2 = strong_factory.clone();
    let inputs_c = inputs.clone();
    let outcome = probe_weak_consensus(
        &cfg,
        move |pid| WeakFromAgreement::new(strong_factory2(pid), inputs_c.clone()),
        60,
        42,
    )
    .unwrap();
    assert!(
        matches!(outcome, ProbeOutcome::Clean(_)),
        "composed stack violated weak consensus: {outcome:?}"
    );
}

#[test]
fn corollary_1_shape_reduction_inputs_from_two_executions() {
    // External-validity algorithms escape the formalism, but Corollary 1
    // only needs two fully correct executions with different decisions.
    // Manufacture the inputs directly from executions, not from a validity
    // enumeration.
    let (n, t) = (4, 1);
    let cfg = ExecutorConfig::new(n, t);
    let run = |proposals: Vec<Bit>| {
        Scenario::config(&cfg)
            .protocol(|_| PhaseKing::new(n, t))
            .inputs(proposals)
            .run()
            .unwrap()
    };
    let e0 = run(uniform(n, Bit::Zero));
    let e1 = run(uniform(n, Bit::One));
    let all: Vec<ProcessId> = ProcessId::all(n).collect();
    let v0 = e0.unanimous_decision(all.iter()).unwrap();
    let v1 = e1.unanimous_decision(all.iter()).unwrap();
    assert_ne!(v0, v1);
    let inputs = ReductionInputs {
        c0: uniform(n, Bit::Zero),
        c1: uniform(n, Bit::One),
        v0,
        v1,
        c_star: InputConfig::full(uniform(n, Bit::One)),
    };
    let outcome = probe_weak_consensus(
        &cfg,
        move |_| WeakFromAgreement::new(PhaseKing::new(n, t), inputs.clone()),
        60,
        43,
    )
    .unwrap();
    assert!(matches!(outcome, ProbeOutcome::Clean(_)));
}
