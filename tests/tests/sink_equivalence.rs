//! Sink equivalence: the trace-free [`StatsSink`] engine path must produce
//! **value-identical** [`ScenarioStats`] to stats derived from the
//! [`FullTrace`] execution of the same scenario — for every protocol, every
//! adversary flavor (including mixed Byzantine+omission and seeded-random
//! omission), and every input profile.
//!
//! This is the property that lets campaigns default to stats-only sweeps
//! (`TraceMode::Stats`) without changing a single reported number.

use ba_crypto::Keybook;
use ba_protocols::broken::{
    LeaderEcho, OneRoundAllToAll, OwnProposal, ParanoidEcho, SilentConstant,
};
use ba_protocols::{DolevStrong, EigConsensus, FloodSet, PhaseKing};
use ba_sim::{
    Adversary, Bit, Campaign, Payload, ProcessId, Protocol, RandomOmissionPlan, Round, Scenario,
    ScenarioStats, SilentByzantine, SimRng, TraceMode,
};

/// Adversary flavors under test. `mixed` corrupts two processes, so it only
/// applies when `t >= 2` (and `n >= 3` keeps the sets disjoint from p0).
/// The trailing three are the adaptive fault-model family: corruption
/// chosen mid-run, moved under a budget, or combined with seeded delivery
/// rescheduling — the equivalence must hold for execution-observing
/// adversaries too.
const ADVERSARIES: &[&str] = &[
    "none",
    "isolation",
    "crash",
    "random-omission",
    "byzantine-silent",
    "mixed",
    "adaptive-worst-case",
    "mobile",
    "scheduler",
];

const INPUTS: &[&str] = &["zeros", "ones", "alternating", "random"];

fn adversary<M: Payload>(label: &str, n: usize, t: usize, seed: u64) -> Adversary<'static, Bit, M> {
    let last = ProcessId(n - 1);
    match label {
        "none" => Adversary::none(),
        "isolation" => Adversary::isolation([last], Round(2)),
        "crash" => Adversary::crash([(last, Round(2))]),
        "random-omission" => Adversary::omission(
            [last],
            RandomOmissionPlan::new([last], 0.25, 0.25, seed ^ 0xA11CE),
        ),
        "byzantine-silent" => Adversary::one_byzantine(last, SilentByzantine),
        "mixed" => {
            let omission_faulty = ProcessId(n - 2);
            Adversary::mixed(
                [(last, Box::new(SilentByzantine) as _)],
                [omission_faulty],
                RandomOmissionPlan::new([omission_faulty], 0.3, 0.3, seed ^ 0xB0B),
            )
        }
        "adaptive-worst-case" => Adversary::adaptive_worst_case(t),
        "mobile" => Adversary::mobile((n - t..n).map(ProcessId), 2),
        "scheduler" => Adversary::scheduler(last, (n - 1) / 2, seed ^ 0xC0DE),
        other => panic!("unknown adversary label {other:?}"),
    }
}

fn inputs(label: &str, n: usize, seed: u64) -> Vec<Bit> {
    match label {
        "zeros" => vec![Bit::Zero; n],
        "ones" => vec![Bit::One; n],
        "alternating" => (0..n).map(|i| Bit::from(i % 2 == 1)).collect(),
        "random" => {
            let mut rng = SimRng::seed_from_u64(seed ^ 0x5EED);
            (0..n).map(|_| Bit::from(rng.gen_bool(0.5))).collect()
        }
        other => panic!("unknown input label {other:?}"),
    }
}

/// Runs one scenario through both engines and asserts identical outcomes —
/// equal stats on success, equal typed errors on failure.
fn assert_equivalent<P, F>(context: &str, n: usize, t: usize, factory: F, adv: &str, inp: &str)
where
    P: Protocol<Input = Bit, Output = Bit>,
    F: Fn(ProcessId) -> P,
{
    let seed = (n as u64) << 32 | (t as u64) << 16 | 7;
    let build = || {
        Scenario::new(n, t)
            .protocol(&factory)
            .inputs(inputs(inp, n, seed))
            .adversary(adversary(adv, n, t, seed))
    };
    let full = build().run().map(|exec| {
        exec.validate()
            .unwrap_or_else(|e| panic!("{context}: engine produced invalid execution: {e}"));
        ScenarioStats::from_execution(&exec)
    });
    let stats = build().run_stats();
    assert_eq!(
        full, stats,
        "{context}: StatsSink diverged from FullTrace-derived stats"
    );
}

/// Every protocol × adversary × input profile over a small `(n, t)` grid.
#[test]
fn stats_sink_matches_full_trace_for_all_protocols_and_adversaries() {
    // n > 3t throughout so phase-king and EIG participate everywhere. Small
    // sizes on purpose: the property is about engine code paths (fates,
    // modes, violations), which tiny systems already exercise; scale
    // coverage comes from the large-n bench sweeps.
    let grid = [(4usize, 1usize), (5, 1), (7, 2)];
    for (n, t) in grid {
        for adv in ADVERSARIES {
            if *adv == "mixed" && (t < 2 || n < 3) {
                continue;
            }
            for inp in INPUTS {
                let ctx = |p: &str| format!("{p} n={n} t={t} adv={adv} in={inp}");
                assert_equivalent(&ctx("flood-set"), n, t, |_| FloodSet::new(), adv, inp);
                assert_equivalent(
                    &ctx("dolev-strong"),
                    n,
                    t,
                    DolevStrong::factory(Keybook::new(n), ProcessId(0), Bit::Zero),
                    adv,
                    inp,
                );
                assert_equivalent(&ctx("phase-king"), n, t, |_| PhaseKing::new(n, t), adv, inp);
                assert_equivalent(
                    &ctx("eig"),
                    n,
                    t,
                    |_| EigConsensus::new(n, t, Bit::Zero),
                    adv,
                    inp,
                );
                assert_equivalent(
                    &ctx("leader-echo"),
                    n,
                    t,
                    |_: ProcessId| LeaderEcho::new(ProcessId(0)),
                    adv,
                    inp,
                );
                assert_equivalent(&ctx("own-proposal"), n, t, |_| OwnProposal::new(), adv, inp);
                assert_equivalent(
                    &ctx("one-round-all-to-all"),
                    n,
                    t,
                    |_| OneRoundAllToAll::new(),
                    adv,
                    inp,
                );
                assert_equivalent(
                    &ctx("paranoid-echo"),
                    n,
                    t,
                    |_| ParanoidEcho::new(),
                    adv,
                    inp,
                );
                assert_equivalent(
                    &ctx("silent-constant"),
                    n,
                    t,
                    |_| SilentConstant::new(Bit::One),
                    adv,
                    inp,
                );
            }
        }
    }
}

/// Scenario errors (not just stats) must be identical across engines.
#[test]
fn both_engines_report_identical_typed_errors() {
    let full = Scenario::new(3, 3)
        .protocol(|_| FloodSet::new())
        .uniform_input(Bit::Zero)
        .run()
        .unwrap_err();
    let stats = Scenario::new(3, 3)
        .protocol(|_| FloodSet::new())
        .uniform_input(Bit::Zero)
        .run_stats()
        .unwrap_err();
    assert_eq!(full, stats);
}

/// The same equivalence holds one level up: a `Campaign` sweep forced to
/// `TraceMode::Full` must equal the default stats-only sweep, report for
/// report — including violation strings and grid order.
#[test]
fn campaign_sweeps_are_mode_invariant() {
    let build = |point: &ba_sim::CampaignPoint| {
        let (n, t) = (point.n, point.t);
        let scenario = Scenario::new(n, t)
            .protocol(move |_| PhaseKing::new(n, t))
            .inputs((0..n).map(|i| Bit::from(i % 2 == 0)));
        match point.adversary.as_str() {
            "isolation" => scenario.adversary(Adversary::isolation([ProcessId(n - 1)], Round(2))),
            _ => scenario,
        }
    };
    let grid = || {
        Campaign::grid(
            (4..12).map(|n| (n, (n - 1) / 3)),
            &["none", "isolation"],
            &["alternating"],
        )
    };
    let stats_mode = grid().trace_mode(TraceMode::Stats).run_scenarios(build);
    let full_mode = grid().trace_mode(TraceMode::Full).run_scenarios(build);
    let default_mode = grid().run_scenarios(build);
    assert_eq!(stats_mode, full_mode);
    assert_eq!(stats_mode, default_mode, "campaigns default to stats mode");
}

/// Attaching a telemetry recorder must not change a single reported value:
/// the campaign report with a live [`ba_obs::Aggregator`] installed is
/// bit-identical to the recorder-off report, in both trace modes — and the
/// deterministic telemetry channel itself is mode-invariant (the
/// [`TraceMode::Full`] engine observes the same routing the stats engine
/// does).
#[test]
fn recording_is_observation_only_in_both_trace_modes() {
    use ba_obs::Aggregator;
    use std::sync::Arc;

    let build = |point: &ba_sim::CampaignPoint| {
        let (n, t) = (point.n, point.t);
        let scenario = Scenario::new(n, t)
            .protocol(move |_| PhaseKing::new(n, t))
            .inputs((0..n).map(|i| Bit::from(i % 2 == 0)));
        match point.adversary.as_str() {
            "isolation" => scenario.adversary(Adversary::isolation([ProcessId(n - 1)], Round(2))),
            _ => scenario,
        }
    };
    let grid = || {
        Campaign::grid(
            (4..12).map(|n| (n, (n - 1) / 3)),
            &["none", "isolation"],
            &["alternating"],
        )
    };
    let bare = grid().run_scenarios(build);

    let stats_agg = Arc::new(Aggregator::new());
    let recorded_stats = grid()
        .trace_mode(TraceMode::Stats)
        .recorder(stats_agg.clone())
        .run_scenarios(build);
    assert_eq!(
        recorded_stats, bare,
        "a live recorder changed the stats-mode report"
    );

    let full_agg = Arc::new(Aggregator::new());
    let recorded_full = grid()
        .trace_mode(TraceMode::Full)
        .recorder(full_agg.clone())
        .run_scenarios(build);
    assert_eq!(
        recorded_full, bare,
        "a live recorder changed the full-trace report"
    );

    let stats_snapshot = stats_agg.snapshot();
    assert_eq!(
        stats_snapshot.deterministic(),
        full_agg.snapshot().deterministic(),
        "deterministic telemetry diverged across trace modes"
    );
    // Sanity: the deterministic channel actually carried the run.
    let det = stats_snapshot.deterministic();
    assert_eq!(
        det.counters.get("exec.runs").copied(),
        Some(grid().len() as u64)
    );
    assert_eq!(
        det.events.get("campaign.point.done").copied(),
        Some(grid().len() as u64)
    );
}
