//! EXP-T4 / EXP-T5: the general solvability theorem, cross-validated
//! against reality.
//!
//! For every catalog problem and `(n, t)` in the grid: when Theorem 4 says
//! *solvable*, we actually construct the solution via Algorithm 2 over a
//! real interactive-consistency protocol and verify it (under fault-free,
//! omission, and Byzantine executions); when it says *unsolvable*, we check
//! the CC witness is genuine (two contained configurations with disjoint
//! admissible sets, or an empty intersection).

use std::sync::Arc;

use ba_core::reduction::ViaInteractiveConsistency;
use ba_core::solvability::{check_containment_condition, solvability, Gamma};
use ba_core::validity::{
    containment_set, InputConfig, IntervalValidity, MajorityValidity, SenderValidity,
    StrongValidity, SystemParams, ValidityProperty, WeakValidity,
};
use ba_crypto::Keybook;
use ba_protocols::interactive_consistency::{authenticated_ic_factory, unauthenticated_ic_factory};
use ba_sim::{
    Adversary, Bit, BoxedBehavior, ProcessId, ReplayByzantine, Scenario, SilentByzantine,
};
use ba_tests::assert_agreement;

/// Exhaustively validates an Algorithm 2 solution for `vp` over
/// authenticated IC: every full proposal assignment × a set of Byzantine
/// strategies; decisions must be unanimous and admissible.
fn validate_solution_binary<VP>(vp: &VP, n: usize, t: usize)
where
    VP: ValidityProperty<Input = Bit>,
    VP::Output: Clone,
{
    let params = SystemParams::new(n, t);
    let gamma: Arc<Gamma<Bit, VP::Output>> = Arc::new(
        check_containment_condition(vp, &params)
            .gamma()
            .cloned()
            .expect("solvable problems satisfy CC"),
    );

    for mask in 0u32..(1 << n) {
        let proposals: Vec<Bit> = (0..n).map(|i| Bit::from(mask & (1 << i) != 0)).collect();
        for byz in 0..2u8 {
            let book = Keybook::new(n);
            let gamma = gamma.clone();
            let factory = move |pid: ProcessId| {
                ViaInteractiveConsistency::new(
                    authenticated_ic_factory(book.clone(), Bit::Zero)(pid),
                    gamma.clone(),
                )
            };
            // Corrupt the last process with a rotating strategy (the
            // fault-free case is covered by the exhaustive Algorithm 2 unit
            // tests).
            let target = ProcessId(n - 1);
            let behavior: BoxedBehavior<'static, Bit, _> = match byz {
                0 => Box::new(SilentByzantine),
                _ => Box::new(ReplayByzantine::new(u64::from(mask) + 1, 2)),
            };
            let exec = Scenario::new(n, t)
                .protocol(factory)
                .inputs(proposals.iter().copied())
                .adversary(Adversary::byzantine([(target, behavior)]))
                .run()
                .unwrap();
            exec.validate().unwrap();
            let decided = assert_agreement(&exec);
            let config =
                InputConfig::new(&params, exec.correct().map(|p| (p, proposals[p.index()])));
            let admissible = vp.admissible(&params, &config);
            assert!(
                admissible.contains(&decided),
                "{}: decided {decided:?} ∉ val({config}) at n={n}, t={t}",
                vp.name()
            );
        }
    }
}

/// Checks a CC witness is genuine.
fn validate_witness<VP: ValidityProperty>(vp: &VP, n: usize, t: usize) {
    let params = SystemParams::new(n, t);
    let cc = check_containment_condition(vp, &params);
    let witness = cc.witness().expect("expected a CC violation");
    // The intersection over the containment set must indeed be empty.
    let mut intersection: Option<std::collections::BTreeSet<VP::Output>> = None;
    for sub in containment_set(&params, &witness.config) {
        let adm = vp.admissible(&params, &sub);
        intersection = Some(match intersection {
            None => adm,
            Some(acc) => acc.intersection(&adm).cloned().collect(),
        });
    }
    assert!(
        intersection.unwrap().is_empty(),
        "witness intersection is non-empty"
    );
    if let Some((a, b)) = &witness.disjoint_pair {
        assert!(witness.config.contains(a));
        assert!(witness.config.contains(b));
        let adm_a = vp.admissible(&params, a);
        let adm_b = vp.admissible(&params, b);
        assert!(adm_a.intersection(&adm_b).next().is_none());
    }
}

#[test]
fn weak_consensus_solvable_and_constructed_everywhere() {
    for (n, t) in [(3usize, 1usize), (4, 1), (4, 2)] {
        let vp = WeakValidity::binary();
        let report = solvability(&vp, &SystemParams::new(n, t));
        assert!(report.authenticated_solvable);
        validate_solution_binary(&vp, n, t);
    }
}

#[test]
fn strong_consensus_constructed_where_theorem_5_allows() {
    let vp = StrongValidity::binary();
    for (n, t) in [(3usize, 1usize), (4, 1), (5, 2)] {
        assert!(solvability(&vp, &SystemParams::new(n, t)).authenticated_solvable);
        validate_solution_binary(&vp, n, t);
    }
    for (n, t) in [(4usize, 2usize), (6, 3)] {
        let report = solvability(&vp, &SystemParams::new(n, t));
        assert!(!report.authenticated_solvable, "Theorem 5 at n={n}, t={t}");
        validate_witness(&vp, n, t);
    }
}

#[test]
fn broadcast_constructed_even_with_dishonest_majority() {
    // Sender validity is authenticated-solvable for any t < n [52]; check a
    // dishonest-majority instance end to end.
    let vp = SenderValidity::new(ProcessId(0), vec![Bit::Zero, Bit::One]);
    for (n, t) in [(4usize, 2usize), (4, 3)] {
        assert!(solvability(&vp, &SystemParams::new(n, t)).authenticated_solvable);
        validate_solution_binary(&vp, n, t);
    }
}

#[test]
fn majority_validity_unsolvable_with_genuine_witness() {
    for (n, t) in [(4usize, 1usize), (4, 2), (6, 2)] {
        let vp = MajorityValidity::new();
        let report = solvability(&vp, &SystemParams::new(n, t));
        assert!(
            !report.authenticated_solvable,
            "majority validity at n={n}, t={t}"
        );
        validate_witness(&vp, n, t);
    }
}

#[test]
fn interval_validity_crossover_matches_theory() {
    // Solvable at t < n/2, witness at t ≥ n/2 — and at the solvable point
    // the Algorithm 2 construction over *unauthenticated* IC works when
    // n > 3t.
    let vp = IntervalValidity::new(3);
    let params_ok = SystemParams::new(4, 1);
    let report = solvability(&vp, &params_ok);
    assert!(report.authenticated_solvable && report.unauthenticated_solvable);
    validate_witness(&vp, 4, 2);

    // Unauthenticated construction at (4, 1).
    let gamma = Arc::new(
        check_containment_condition(&vp, &params_ok)
            .gamma()
            .cloned()
            .unwrap(),
    );
    for proposals in [[0u8, 1, 2, 0], [2, 2, 2, 2], [0, 0, 1, 1]] {
        let gamma = gamma.clone();
        let factory = move |pid: ProcessId| {
            ViaInteractiveConsistency::new(
                unauthenticated_ic_factory(4, 1, 0u8)(pid),
                gamma.clone(),
            )
        };
        let exec = Scenario::new(4, 1)
            .protocol(factory)
            .inputs(proposals)
            .adversary(Adversary::one_byzantine(ProcessId(3), SilentByzantine))
            .run()
            .unwrap();
        let decided = assert_agreement(&exec);
        let params = SystemParams::new(4, 1);
        let config = InputConfig::new(&params, exec.correct().map(|p| (p, proposals[p.index()])));
        assert!(vp.admissible(&params, &config).contains(&decided));
    }
}

#[test]
fn unauthenticated_boundary_is_n_over_3t() {
    let vp = WeakValidity::binary();
    let at_boundary = solvability(&vp, &SystemParams::new(6, 2));
    assert!(
        !at_boundary.unauthenticated_solvable,
        "n = 3t must be unsolvable"
    );
    assert!(at_boundary.authenticated_solvable);
    let above = solvability(&vp, &SystemParams::new(7, 2));
    assert!(above.unauthenticated_solvable);
}
