//! Telemetry determinism across execution topology: the deterministic
//! channel (counters, histograms, event counts) of the `ba-obs` layer must
//! be **bit-identical** no matter how a sweep is scheduled — one worker
//! thread or eight, one shard or four. Wall-clock metrics (gauges,
//! timings) live in a separate channel and are never compared.
//!
//! This is the property that makes campaign telemetry trustworthy as an
//! experimental artifact: two researchers running the same grid on
//! different machines, thread counts, or shard splits publish the same
//! logical numbers.

use std::sync::Arc;

use ba_bench::dist::{run_manifest, run_manifest_recorded, scenario_campaign_report};
use ba_dist::{merge_campaign_report, plan_shards, Decode, ShardReport, SweepSpec};
use ba_obs::{Aggregator, Snapshot};
use ba_sim::{Bit, Campaign, CampaignPoint, ScenarioStats};

/// A grid with enough points (and per-point variety) that scheduling
/// differences would show up if telemetry were schedule-dependent.
fn grid_points() -> Vec<CampaignPoint> {
    Campaign::grid(
        (4..10).map(|n| (n, (n - 1) / 3)),
        &["none", "isolation", "crash"],
        &["ones", "alternating"],
    )
    .points()
    .to_vec()
}

/// Runs the grid through the registry sweep with an [`Aggregator`]
/// attached, on `threads` worker threads, returning the deterministic
/// snapshot and the report.
fn recorded_run(threads: usize) -> (ba_obs::DeterministicSnapshot, ba_sim::CampaignReport<Bit>) {
    let points = grid_points();
    let agg = Arc::new(Aggregator::new());
    let report = ba_bench::dist::scenario_campaign_report_recorded(
        &points,
        "dolev-strong",
        0xD5,
        threads,
        agg.clone(),
    )
    .expect("registry sweep");
    (agg.snapshot().deterministic(), report)
}

/// One worker thread and eight produce the same logical counters — the
/// campaign's per-point work is deterministic and telemetry only observes
/// it, so only the interleaving (not the totals) may differ.
#[test]
fn deterministic_counters_are_identical_across_thread_counts() {
    let (one_thread, report_one) = recorded_run(1);
    let (eight_threads, report_eight) = recorded_run(8);
    assert_eq!(report_one, report_eight, "reports diverged across threads");
    assert_eq!(
        one_thread, eight_threads,
        "deterministic telemetry diverged across thread counts"
    );
    // The channel is populated, not vacuously equal.
    assert_eq!(
        one_thread.counters.get("exec.runs").copied(),
        Some(grid_points().len() as u64)
    );
    assert!(one_thread.counters.contains_key("exec.messages.sent"));
    assert!(one_thread.histograms.contains_key("exec.round.messages"));
}

/// Merging the per-shard snapshots of a 4-way split equals the snapshot of
/// the unsharded run — and the merged campaign report equals the 1-shard
/// report bit-for-bit, with recording enabled on every worker.
#[test]
fn four_shard_telemetry_merges_to_the_single_shard_run() {
    let points = grid_points();
    let spec = SweepSpec::scenarios(points.clone(), "dolev-strong")
        .base_seed(0xD5)
        .worker_threads(2);

    let run_recorded = |manifest: &ba_dist::ShardManifest| {
        let agg = Arc::new(Aggregator::new());
        let wire = run_manifest_recorded(manifest, Some(agg.clone() as Arc<dyn ba_obs::Recorder>))
            .expect("shard run");
        (agg.snapshot(), wire)
    };

    // The unsharded reference, recorded.
    let single_manifest = plan_shards(&spec, 1);
    let (single_snapshot, single_wire) = run_recorded(&single_manifest[0]);

    // The 4-way split: each shard gets its own aggregator, as separate
    // worker processes would.
    let mut merged = Snapshot::default();
    let mut shard_reports: Vec<ShardReport<ScenarioStats<Bit>>> = Vec::new();
    for manifest in plan_shards(&spec, 4) {
        let (snapshot, wire) = run_recorded(&manifest);
        merged.merge(&snapshot);
        shard_reports.push(ShardReport::from_wire(&wire).expect("wire round-trip"));
    }

    assert_eq!(
        merged.deterministic(),
        single_snapshot.deterministic(),
        "merge(4) diverged from run(1) on the deterministic channel"
    );

    // merge(k) == run(1) for the reports themselves, recording on.
    let merged_report = merge_campaign_report(&points, shard_reports).expect("merge");
    let single_report = merge_campaign_report(
        &points,
        vec![ShardReport::<ScenarioStats<Bit>>::from_wire(&single_wire).expect("wire round-trip")],
    )
    .expect("merge");
    assert_eq!(merged_report, single_report);

    // ... and recording never perturbed the underlying sweep: the bare
    // in-process reference matches too.
    let reference = scenario_campaign_report(&points, "dolev-strong", 0xD5, 1).expect("reference");
    assert_eq!(merged_report, reference);

    // Recording is also a no-op at the wire level: a bare shard run writes
    // the same bytes.
    let bare_wire = run_manifest(&single_manifest[0]).expect("bare shard run");
    assert_eq!(single_wire, bare_wire);
}
